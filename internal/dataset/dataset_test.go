package dataset

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"recordroute/internal/topology"
)

func build(t *testing.T) (*topology.Topology, *Dataset) {
	t.Helper()
	topo := topology.MustBuild(topology.DefaultConfig(topology.Epoch2016).Scale(0.15))
	return topo, FromTopology(topo)
}

func TestFromTopologyCoversEveryDest(t *testing.T) {
	topo, d := build(t)
	if len(d.Prefixes) != len(topo.Dests) || len(d.Hitlist) != len(topo.Dests) {
		t.Fatalf("prefixes=%d hitlist=%d dests=%d", len(d.Prefixes), len(d.Hitlist), len(topo.Dests))
	}
	for _, h := range d.Hitlist {
		if !h.Prefix.Contains(h.Addr) {
			t.Errorf("hitlist addr %v outside %v", h.Addr, h.Prefix)
		}
	}
	// Origin lookup agrees with topology ground truth.
	for _, dest := range topo.Dests[:20] {
		if got, want := d.OriginASN(dest.Addr), topo.ASes[dest.ASIdx].ASN; got != want {
			t.Errorf("OriginASN(%v) = %d, want %d", dest.Addr, got, want)
		}
	}
}

func TestDestInfosTypesMatchTopology(t *testing.T) {
	topo, d := build(t)
	infos := d.DestInfos()
	if len(infos) != len(topo.Dests) {
		t.Fatalf("infos = %d", len(infos))
	}
	byAddr := make(map[netip.Addr]string)
	for _, dest := range topo.Dests {
		byAddr[dest.Addr] = topo.ASes[dest.ASIdx].Type().String()
	}
	for _, info := range infos {
		if byAddr[info.Addr] != info.Type {
			t.Errorf("%v typed %q, want %q", info.Addr, info.Type, byAddr[info.Addr])
		}
	}
}

func TestRoundTripThroughTextFormats(t *testing.T) {
	_, d := build(t)
	var pfx, hit, ast bytes.Buffer
	if err := d.WritePrefixes(&pfx); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteHitlist(&hit); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteASTypes(&ast); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&pfx, &hit, &ast)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(back.Prefixes) != len(d.Prefixes) || len(back.Hitlist) != len(d.Hitlist) {
		t.Fatalf("round trip sizes: %d/%d vs %d/%d",
			len(back.Prefixes), len(back.Hitlist), len(d.Prefixes), len(d.Hitlist))
	}
	for i := range d.Prefixes {
		if back.Prefixes[i] != d.Prefixes[i] {
			t.Fatalf("prefix %d: %v vs %v", i, back.Prefixes[i], d.Prefixes[i])
		}
	}
	for asn, typ := range d.ASType {
		if back.ASType[asn] != typ {
			t.Errorf("asn %d type %q vs %q", asn, back.ASType[asn], typ)
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	good := strings.NewReader("")
	if _, err := Read(strings.NewReader("10.0.0.0/8"), good, good); err == nil {
		t.Error("accepted prefix row without asn")
	}
	if _, err := Read(strings.NewReader("not-a-prefix|5"), strings.NewReader(""), strings.NewReader("")); err == nil {
		t.Error("accepted bad prefix")
	}
	if _, err := Read(strings.NewReader(""), strings.NewReader(""), strings.NewReader("x|y")); err == nil {
		t.Error("accepted bad astype row")
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	pfx := strings.NewReader("# comment\n\n10.0.0.0/24|7\n")
	hit := strings.NewReader("10.0.0.0/24|10.0.0.1\n")
	ast := strings.NewReader("7|sim_class|Content\n")
	d, err := Read(pfx, hit, ast)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Prefixes) != 1 || d.ASType[7] != "Content" {
		t.Errorf("parsed %+v", d)
	}
}
