// Package dataset provides the study's input datasets in exportable,
// re-parseable text formats mirroring the originals: an advertised-
// prefix table with origin ASes (RouteViews RIB-derived), a one-address-
// per-prefix hitlist (Fan & Heidemann style), and an AS classification
// (CAIDA as2types style). The analysis layer consumes these datasets —
// not topology internals — exactly as the paper's pipeline consumed
// RouteViews and CAIDA files.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"recordroute/internal/analysis"
	"recordroute/internal/topology"
)

// PrefixEntry is one advertised prefix and its origin AS.
type PrefixEntry struct {
	Prefix netip.Prefix
	ASN    int
}

// HitlistEntry is the representative probe target for one prefix.
type HitlistEntry struct {
	Prefix netip.Prefix
	Addr   netip.Addr
}

// Dataset bundles the study inputs.
type Dataset struct {
	// Prefixes is the advertised-prefix table, sorted by prefix.
	Prefixes []PrefixEntry
	// Hitlist holds one representative address per prefix.
	Hitlist []HitlistEntry
	// ASType maps origin ASNs to classification labels.
	ASType map[int]string

	// lookup index built lazily by OriginASN.
	byLen   map[int]map[netip.Prefix]int
	lengths []int
}

// FromTopology extracts the datasets a real study would download.
func FromTopology(t *topology.Topology) *Dataset {
	d := &Dataset{ASType: make(map[int]string)}
	for _, dest := range t.Dests {
		asn := t.ASes[dest.ASIdx].ASN
		d.Prefixes = append(d.Prefixes, PrefixEntry{Prefix: dest.Prefix, ASN: asn})
		d.Hitlist = append(d.Hitlist, HitlistEntry{Prefix: dest.Prefix, Addr: dest.Addr})
	}
	for _, as := range t.ASes {
		d.ASType[as.ASN] = as.Type().String()
	}
	sortDataset(d)
	return d
}

func sortDataset(d *Dataset) {
	sort.Slice(d.Prefixes, func(i, j int) bool {
		return d.Prefixes[i].Prefix.Addr().Less(d.Prefixes[j].Prefix.Addr())
	})
	sort.Slice(d.Hitlist, func(i, j int) bool {
		return d.Hitlist[i].Addr.Less(d.Hitlist[j].Addr)
	})
}

// OriginASN returns the origin AS for an address using longest known
// prefix containment, or -1. Lookups are indexed by prefix length, so
// repeated calls stay cheap on large tables.
func (d *Dataset) OriginASN(a netip.Addr) int {
	if d.byLen == nil {
		d.byLen = make(map[int]map[netip.Prefix]int)
		for _, p := range d.Prefixes {
			m := d.byLen[p.Prefix.Bits()]
			if m == nil {
				m = make(map[netip.Prefix]int)
				d.byLen[p.Prefix.Bits()] = m
			}
			m[p.Prefix.Masked()] = p.ASN
			d.lengths = appendUniqueDesc(d.lengths, p.Prefix.Bits())
		}
	}
	for _, bits := range d.lengths {
		p, err := a.Prefix(bits)
		if err != nil {
			continue
		}
		if asn, ok := d.byLen[bits][p]; ok {
			return asn
		}
	}
	return -1
}

// appendUniqueDesc inserts v into a descending-sorted unique slice.
func appendUniqueDesc(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return s
		}
		if x < v {
			s = append(s, 0)
			copy(s[i+1:], s[i:])
			s[i] = v
			return s
		}
	}
	return append(s, v)
}

// DestInfos adapts the dataset for Table 1 construction.
func (d *Dataset) DestInfos() []analysis.DestInfo {
	prefixASN := make(map[netip.Prefix]int, len(d.Prefixes))
	for _, p := range d.Prefixes {
		prefixASN[p.Prefix] = p.ASN
	}
	out := make([]analysis.DestInfo, 0, len(d.Hitlist))
	for _, h := range d.Hitlist {
		asn := prefixASN[h.Prefix]
		typ := d.ASType[asn]
		if typ == "" {
			typ = topology.TypeUnknown.String()
		}
		out = append(out, analysis.DestInfo{Addr: h.Addr, ASN: asn, Type: typ})
	}
	return out
}

// Addrs returns every hitlist address in order.
func (d *Dataset) Addrs() []netip.Addr {
	out := make([]netip.Addr, len(d.Hitlist))
	for i, h := range d.Hitlist {
		out[i] = h.Addr
	}
	return out
}

// WritePrefixes emits the prefix table, one "prefix|asn" per line.
func (d *Dataset) WritePrefixes(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# format: prefix|origin_asn")
	for _, p := range d.Prefixes {
		fmt.Fprintf(bw, "%s|%d\n", p.Prefix, p.ASN)
	}
	return bw.Flush()
}

// WriteHitlist emits "prefix|addr" lines.
func (d *Dataset) WriteHitlist(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# format: prefix|representative_addr")
	for _, h := range d.Hitlist {
		fmt.Fprintf(bw, "%s|%s\n", h.Prefix, h.Addr)
	}
	return bw.Flush()
}

// WriteASTypes emits CAIDA as2types-style "asn|source|type" lines.
func (d *Dataset) WriteASTypes(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# format: as|source|type")
	asns := make([]int, 0, len(d.ASType))
	for asn := range d.ASType {
		asns = append(asns, asn)
	}
	sort.Ints(asns)
	for _, asn := range asns {
		fmt.Fprintf(bw, "%d|sim_class|%s\n", asn, d.ASType[asn])
	}
	return bw.Flush()
}

// Read parses all three tables back from their respective readers.
func Read(prefixes, hitlist, astypes io.Reader) (*Dataset, error) {
	d := &Dataset{ASType: make(map[int]string)}
	if err := eachLine(prefixes, func(fields []string) error {
		if len(fields) != 2 {
			return fmt.Errorf("dataset: prefix row has %d fields", len(fields))
		}
		p, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		asn, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("dataset: bad asn %q", fields[1])
		}
		d.Prefixes = append(d.Prefixes, PrefixEntry{Prefix: p, ASN: asn})
		return nil
	}); err != nil {
		return nil, err
	}
	if err := eachLine(hitlist, func(fields []string) error {
		if len(fields) != 2 {
			return fmt.Errorf("dataset: hitlist row has %d fields", len(fields))
		}
		p, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		a, err := netip.ParseAddr(fields[1])
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		d.Hitlist = append(d.Hitlist, HitlistEntry{Prefix: p, Addr: a})
		return nil
	}); err != nil {
		return nil, err
	}
	if err := eachLine(astypes, func(fields []string) error {
		if len(fields) != 3 {
			return fmt.Errorf("dataset: astype row has %d fields", len(fields))
		}
		asn, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("dataset: bad asn %q", fields[0])
		}
		d.ASType[asn] = fields[2]
		return nil
	}); err != nil {
		return nil, err
	}
	sortDataset(d)
	return d, nil
}

// eachLine feeds non-comment, non-blank pipe-separated rows to fn.
func eachLine(r io.Reader, fn func(fields []string) error) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := fn(strings.Split(line, "|")); err != nil {
			return err
		}
	}
	return sc.Err()
}
