package results

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"sync"
)

// EpochIndex is the time-series result store of a recurring campaign:
// one record per completed epoch, holding the RR-reachable destination
// set that epoch observed. Consecutive records diff into the
// gained/lost/stable churn view the epochs-live experiment and the
// service's GET /schedules/{id}/diff render. Addresses are stored
// sorted, so the index's JSON form — and every render derived from it —
// is a pure function of the epoch results, independent of arrival
// order.
type EpochIndex struct {
	mu     sync.Mutex
	epochs []EpochRecord
}

// EpochRecord is one epoch's reachable-set snapshot.
type EpochRecord struct {
	Epoch     int          `json:"epoch"`
	Reachable []netip.Addr `json:"reachable"`
}

// EpochDiff is the reachability delta between two consecutive epochs.
type EpochDiff struct {
	From, To int
	Gained   []netip.Addr // reachable in To, not in From
	Lost     []netip.Addr // reachable in From, not in To
	Stable   int          // reachable in both
}

// Add records an epoch's reachable set, replacing any existing record
// for the same epoch (a resumed epoch re-reports the identical set).
// The input is copied and sorted; records stay ordered by epoch.
func (x *EpochIndex) Add(epoch int, reachable []netip.Addr) {
	set := append([]netip.Addr(nil), reachable...)
	sort.Slice(set, func(i, j int) bool { return set[i].Less(set[j]) })
	x.mu.Lock()
	defer x.mu.Unlock()
	for i := range x.epochs {
		if x.epochs[i].Epoch == epoch {
			x.epochs[i].Reachable = set
			return
		}
	}
	x.epochs = append(x.epochs, EpochRecord{Epoch: epoch, Reachable: set})
	sort.Slice(x.epochs, func(i, j int) bool { return x.epochs[i].Epoch < x.epochs[j].Epoch })
}

// Epochs returns the recorded epochs in order (shared slices; treat as
// read-only).
func (x *EpochIndex) Epochs() []EpochRecord {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]EpochRecord(nil), x.epochs...)
}

// Len returns the number of recorded epochs.
func (x *EpochIndex) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.epochs)
}

// Diffs returns the deltas between each pair of consecutive recorded
// epochs.
func (x *EpochIndex) Diffs() []EpochDiff {
	recs := x.Epochs()
	out := make([]EpochDiff, 0, max(0, len(recs)-1))
	for i := 1; i < len(recs); i++ {
		out = append(out, diffRecords(recs[i-1], recs[i]))
	}
	return out
}

// diffRecords computes the delta between two sorted reachable sets.
func diffRecords(a, b EpochRecord) EpochDiff {
	d := EpochDiff{From: a.Epoch, To: b.Epoch}
	i, j := 0, 0
	for i < len(a.Reachable) && j < len(b.Reachable) {
		switch {
		case a.Reachable[i] == b.Reachable[j]:
			d.Stable++
			i++
			j++
		case a.Reachable[i].Less(b.Reachable[j]):
			d.Lost = append(d.Lost, a.Reachable[i])
			i++
		default:
			d.Gained = append(d.Gained, b.Reachable[j])
			j++
		}
	}
	d.Lost = append(d.Lost, a.Reachable[i:]...)
	d.Gained = append(d.Gained, b.Reachable[j:]...)
	return d
}

// RenderTable writes the per-epoch reachability series with the churn
// deltas between consecutive epochs — the epochs-live experiment's
// render and the body of GET /schedules/{id}/diff.
func (x *EpochIndex) RenderTable(w io.Writer) {
	recs := x.Epochs()
	fmt.Fprintf(w, "%-8s %-10s %-8s %-8s %-8s\n", "epoch", "reachable", "gained", "lost", "stable")
	for i, r := range recs {
		if i == 0 {
			fmt.Fprintf(w, "%-8d %-10d %-8s %-8s %-8s\n", r.Epoch, len(r.Reachable), "-", "-", "-")
			continue
		}
		d := diffRecords(recs[i-1], r)
		fmt.Fprintf(w, "%-8d %-10d %-8d %-8d %-8d\n", r.Epoch, len(r.Reachable), len(d.Gained), len(d.Lost), d.Stable)
	}
}

// MarshalJSON serializes the index (record list only) for persistence;
// UnmarshalJSON restores it. Both lock, so a schedule checkpointing
// while an epoch lands stays consistent.
func (x *EpochIndex) MarshalJSON() ([]byte, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.epochs == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(x.epochs)
}

// UnmarshalJSON restores a persisted index.
func (x *EpochIndex) UnmarshalJSON(data []byte) error {
	var recs []EpochRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.epochs = recs
	return nil
}
