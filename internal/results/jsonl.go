package results

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"recordroute/internal/packet"
	"recordroute/internal/probe"
)

// Wire is the full-fidelity JSON mirror of probe.Result. Unlike the
// pipe format above — which archives only what the paper's analyses
// read — Wire preserves every field, so a stream of Wire lines can
// stand in for the in-memory results of a campaign: checkpoints replay
// them, and the resume-equals-uninterrupted property compares them
// field-for-field (DESIGN.md §11). Addresses use netip's text form;
// times are integer virtual-clock nanoseconds, so the round trip is
// exact.
type Wire struct {
	Dst        netip.Addr   `json:"dst"`
	Kind       int          `json:"kind"`
	TTL        uint8        `json:"ttl,omitempty"`
	RRSlots    int          `json:"rr_slots,omitempty"`
	UDPDstPort uint16       `json:"udp_port,omitempty"`
	Via        []netip.Addr `json:"via,omitempty"`

	Seq            uint16           `json:"seq,omitempty"`
	SentAt         int64            `json:"sent_ns"`
	RcvdAt         int64            `json:"rcvd_ns,omitempty"`
	Type           int              `json:"type"`
	From           netip.Addr       `json:"from"`
	ReplyIPID      uint16           `json:"ipid,omitempty"`
	HasRR          bool             `json:"has_rr,omitempty"`
	RR             []netip.Addr     `json:"rr,omitempty"`
	RRTotalSlots   int              `json:"rr_total,omitempty"`
	RRFull         bool             `json:"rr_full,omitempty"`
	QuotedRR       bool             `json:"quoted_rr,omitempty"`
	TS             []packet.TSEntry `json:"ts,omitempty"`
	TSOverflow     uint8            `json:"ts_overflow,omitempty"`
	Attempts       int              `json:"attempts,omitempty"`
	MatchedAttempt int              `json:"matched,omitempty"`
	// Err is the Result.Err message; decoding reconstructs an
	// errors.New value, which compares equal under reflect.DeepEqual to
	// the errors the prober produces.
	Err string `json:"err,omitempty"`
}

// ToWire converts a probe result to its wire mirror. Slices are shared,
// not copied: the wire value is for immediate encoding.
func ToWire(r probe.Result) Wire {
	w := Wire{
		Dst:        r.Dst,
		Kind:       int(r.Kind),
		TTL:        r.TTL,
		RRSlots:    r.Spec.RRSlots,
		UDPDstPort: r.UDPDstPort,
		Via:        r.Via,

		Seq:            r.Seq,
		SentAt:         int64(r.SentAt),
		RcvdAt:         int64(r.RcvdAt),
		Type:           int(r.Type),
		From:           r.From,
		ReplyIPID:      r.ReplyIPID,
		HasRR:          r.HasRR,
		RR:             r.RR,
		RRTotalSlots:   r.RRTotalSlots,
		RRFull:         r.RRFull,
		QuotedRR:       r.QuotedRR,
		TS:             r.TS,
		TSOverflow:     r.TSOverflow,
		Attempts:       r.Attempts,
		MatchedAttempt: r.MatchedAttempt,
	}
	if r.Err != nil {
		w.Err = r.Err.Error()
	}
	return w
}

// Result converts the wire mirror back to a probe result.
func (w Wire) Result() probe.Result {
	r := probe.Result{
		Spec: probe.Spec{
			Dst:        w.Dst,
			Kind:       probe.Kind(w.Kind),
			TTL:        w.TTL,
			RRSlots:    w.RRSlots,
			UDPDstPort: w.UDPDstPort,
			Via:        w.Via,
		},
		Seq:            w.Seq,
		SentAt:         time.Duration(w.SentAt),
		RcvdAt:         time.Duration(w.RcvdAt),
		Type:           probe.ResponseType(w.Type),
		From:           w.From,
		ReplyIPID:      w.ReplyIPID,
		HasRR:          w.HasRR,
		RR:             w.RR,
		RRTotalSlots:   w.RRTotalSlots,
		RRFull:         w.RRFull,
		QuotedRR:       w.QuotedRR,
		TS:             w.TS,
		TSOverflow:     w.TSOverflow,
		Attempts:       w.Attempts,
		MatchedAttempt: w.MatchedAttempt,
	}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	return r
}

// StreamRecord is one JSONL line of a live campaign stream: a vantage
// point name plus the wire form of one probe result.
type StreamRecord struct {
	VP string `json:"vp"`
	Wire
}

// WriteJSONL appends one JSON line per result to w, in slice order.
func WriteJSONL(w io.Writer, vp string, rs []probe.Result) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range rs {
		if err := enc.Encode(StreamRecord{VP: vp, Wire: ToWire(r)}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL stream back into per-VP result lists,
// preserving line order within each VP. Blank lines are skipped, so a
// stream truncated at a line boundary reads cleanly up to the cut.
func ReadJSONL(r io.Reader) (map[string][]probe.Result, error) {
	out := make(map[string][]probe.Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec StreamRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("results: jsonl line %d: %w", lineNo, err)
		}
		out[rec.VP] = append(out[rec.VP], rec.Wire.Result())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
