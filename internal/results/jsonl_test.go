package results

import (
	"bytes"
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"recordroute/internal/packet"
	"recordroute/internal/probe"
)

// wireSamples covers every field class of probe.Result: each probe
// kind, response type, options payloads, retransmission metadata, and a
// SendError with a cause.
func wireSamples() []probe.Result {
	a := netip.MustParseAddr
	return []probe.Result{
		{
			Spec:   probe.Spec{Dst: a("10.1.2.3"), Kind: probe.Ping},
			Seq:    7,
			SentAt: 125 * time.Millisecond, RcvdAt: 143 * time.Millisecond,
			Type: probe.EchoReply, From: a("10.1.2.3"), ReplyIPID: 991,
			Attempts: 1, MatchedAttempt: 1,
		},
		{
			Spec: probe.Spec{Dst: a("10.9.8.7"), Kind: probe.PingRR, RRSlots: 9},
			Seq:  65535, SentAt: time.Second, RcvdAt: time.Second + 70*time.Millisecond,
			Type: probe.EchoReply, From: a("10.9.8.7"),
			HasRR: true, RR: []netip.Addr{a("10.0.0.1"), a("10.0.0.2")},
			RRTotalSlots: 9, RRFull: false,
			Attempts: 2, MatchedAttempt: 1, ReplyIPID: 12,
		},
		{
			Spec: probe.Spec{Dst: a("172.16.5.5"), Kind: probe.PingRRUDP, UDPDstPort: 40999},
			Seq:  3, SentAt: 2 * time.Second, RcvdAt: 2*time.Second + 9*time.Millisecond,
			Type: probe.PortUnreachable, From: a("172.16.5.5"),
			HasRR: true, QuotedRR: true, RR: []netip.Addr{a("10.0.0.9")},
			RRTotalSlots: 9, RRFull: true, Attempts: 1, MatchedAttempt: 1,
		},
		{
			Spec: probe.Spec{Dst: a("192.168.1.1"), Kind: probe.TTLPingRR, TTL: 11},
			Seq:  40, SentAt: 3 * time.Second,
			Type: probe.TimeExceeded, From: a("10.2.2.2"), QuotedRR: true,
			HasRR: true, RR: []netip.Addr{a("10.2.2.1")}, RRTotalSlots: 9,
			Attempts: 1, MatchedAttempt: 1,
		},
		{
			Spec: probe.Spec{Dst: a("10.4.4.4"), Kind: probe.PingTS},
			Seq:  41, SentAt: 4 * time.Second, RcvdAt: 4*time.Second + time.Millisecond,
			Type: probe.EchoReply, From: a("10.4.4.4"),
			TS:       []packet.TSEntry{{Addr: a("10.4.0.1"), Millis: 4001}},
			Attempts: 1, MatchedAttempt: 1, TSOverflow: 2,
		},
		{
			Spec: probe.Spec{Dst: a("10.6.6.6"), Kind: probe.PingLSRR,
				Via: []netip.Addr{a("10.6.0.1"), a("10.6.0.2")}},
			Seq: 42, SentAt: 5 * time.Second, Type: probe.NoResponse, Attempts: 3,
		},
		{
			Spec: probe.Spec{Dst: a("10.7.7.7"), Kind: probe.Ping},
			Type: probe.SendError, SentAt: 6 * time.Second,
			Err: probe.ErrTooManyOutstanding,
		},
	}
}

// TestJSONLRoundTrip pins the full-fidelity contract: per-VP streams
// come back reflect.DeepEqual to what went in — including SentAt, Seq,
// Via, TS, attempt metadata, and error causes, all of which the pipe
// format drops.
func TestJSONLRoundTrip(t *testing.T) {
	in := map[string][]probe.Result{
		"mlab-01": wireSamples(),
		"plab-02": wireSamples()[:2],
	}
	var buf bytes.Buffer
	for _, vp := range []string{"mlab-01", "plab-02"} {
		if err := WriteJSONL(&buf, vp, in[vp]); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d VPs out, want %d", len(out), len(in))
	}
	for vp, want := range in {
		got := out[vp]
		if len(got) != len(want) {
			t.Fatalf("VP %s: %d results, want %d", vp, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("VP %s result %d differs:\n in: %+v\nout: %+v", vp, i, want[i], got[i])
			}
		}
	}
}

// TestJSONLTruncatedTail: a stream cut mid-line (the shape a killed
// campaign leaves behind) must fail loudly, while a cut at a line
// boundary reads cleanly — the checkpoint loader relies on both.
func TestJSONLTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, "vp", wireSamples()); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")

	whole := strings.Join(lines[:3], "")
	out, err := ReadJSONL(strings.NewReader(whole))
	if err != nil {
		t.Fatalf("clean prefix rejected: %v", err)
	}
	if len(out["vp"]) != 3 {
		t.Fatalf("clean prefix: %d results, want 3", len(out["vp"]))
	}

	cut := whole + lines[3][:len(lines[3])/2]
	if _, err := ReadJSONL(strings.NewReader(cut)); err == nil {
		t.Fatal("mid-line truncation parsed without error")
	}
}

// TestWireErrReconstruction pins the DeepEqual compatibility of decoded
// errors with the prober's own errors.New values.
func TestWireErrReconstruction(t *testing.T) {
	r := ToWire(probe.Result{Type: probe.SendError, Err: probe.ErrTooManyOutstanding}).Result()
	if !reflect.DeepEqual(r.Err, errors.New(probe.ErrTooManyOutstanding.Error())) {
		t.Errorf("decoded err %v not DeepEqual to errors.New of the message", r.Err)
	}
}
