// Package results serializes raw probe results to a line-oriented text
// format and parses them back — the equivalent of the measurement
// datasets the paper released alongside its tools. Analyses can then be
// re-run from archived measurements without re-probing.
//
// Format: one record per line, pipe-separated:
//
//	vp|kind|dst|type|rtt_us|from|ipid|rr_slots|rr_full|quoted|hops…
//
// where hops is a comma-separated recorded-address list (empty when no
// option was recovered). Lines starting with '#' are comments.
package results

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"recordroute/internal/probe"
)

// Record pairs a vantage point name with one probe result.
type Record struct {
	VP     string
	Result probe.Result
}

// Write emits records, sorted by VP then destination for reproducible
// diffs.
func Write(w io.Writer, perVP map[string][]probe.Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# format: vp|kind|dst|type|rtt_us|from|ipid|rr_slots|rr_full|quoted|hops")
	vps := make([]string, 0, len(perVP))
	for vp := range perVP {
		vps = append(vps, vp)
	}
	sort.Strings(vps)
	for _, vp := range vps {
		for _, r := range perVP[vp] {
			if err := writeRecord(bw, vp, r); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeRecord(w io.Writer, vp string, r probe.Result) error {
	hops := make([]string, len(r.RR))
	for i, h := range r.RR {
		hops[i] = h.String()
	}
	from := ""
	if r.From.IsValid() {
		from = r.From.String()
	}
	_, err := fmt.Fprintf(w, "%s|%s|%s|%s|%d|%s|%d|%d|%t|%t|%s\n",
		vp, r.Kind, r.Dst, r.Type, r.RTT().Microseconds(), from,
		r.ReplyIPID, r.RRTotalSlots, r.RRFull, r.QuotedRR,
		strings.Join(hops, ","))
	return err
}

// Read parses records back, grouped per VP. Unknown kind or type labels
// are rejected: archives must match the tool version that reads them.
func Read(r io.Reader) (map[string][]probe.Result, error) {
	out := make(map[string][]probe.Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		vp, res, err := parseRecord(line)
		if err != nil {
			return nil, fmt.Errorf("results: line %d: %w", lineNo, err)
		}
		out[vp] = append(out[vp], res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseRecord(line string) (string, probe.Result, error) {
	f := strings.Split(line, "|")
	if len(f) != 11 {
		return "", probe.Result{}, fmt.Errorf("%d fields, want 11", len(f))
	}
	var res probe.Result
	kind, err := parseKind(f[1])
	if err != nil {
		return "", res, err
	}
	res.Kind = kind
	if res.Dst, err = netip.ParseAddr(f[2]); err != nil {
		return "", res, err
	}
	if res.Type, err = parseType(f[3]); err != nil {
		return "", res, err
	}
	rttUS, err := strconv.ParseInt(f[4], 10, 64)
	if err != nil {
		return "", res, fmt.Errorf("bad rtt %q", f[4])
	}
	// SentAt/RcvdAt are not archived; reconstruct the RTT only.
	if res.Type != probe.NoResponse {
		res.RcvdAt = time.Duration(rttUS) * time.Microsecond
	}
	if f[5] != "" {
		if res.From, err = netip.ParseAddr(f[5]); err != nil {
			return "", res, err
		}
	}
	ipid, err := strconv.ParseUint(f[6], 10, 16)
	if err != nil {
		return "", res, fmt.Errorf("bad ipid %q", f[6])
	}
	res.ReplyIPID = uint16(ipid)
	slots, err := strconv.Atoi(f[7])
	if err != nil {
		return "", res, fmt.Errorf("bad rr_slots %q", f[7])
	}
	res.RRTotalSlots = slots
	if res.RRFull, err = strconv.ParseBool(f[8]); err != nil {
		return "", res, fmt.Errorf("bad rr_full %q", f[8])
	}
	if res.QuotedRR, err = strconv.ParseBool(f[9]); err != nil {
		return "", res, fmt.Errorf("bad quoted %q", f[9])
	}
	if f[10] != "" {
		for _, hs := range strings.Split(f[10], ",") {
			h, err := netip.ParseAddr(hs)
			if err != nil {
				return "", res, err
			}
			res.RR = append(res.RR, h)
		}
		res.HasRR = true
	} else if res.RRTotalSlots > 0 {
		res.HasRR = true
	}
	return f[0], res, nil
}

// parseKind inverts probe.Kind.String.
func parseKind(s string) (probe.Kind, error) {
	for _, k := range []probe.Kind{
		probe.Ping, probe.PingRR, probe.PingRRUDP,
		probe.TTLPing, probe.TTLPingRR, probe.PingTS, probe.PingLSRR,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

// parseType inverts probe.ResponseType.String.
func parseType(s string) (probe.ResponseType, error) {
	for _, t := range []probe.ResponseType{
		probe.NoResponse, probe.EchoReply, probe.TimeExceeded,
		probe.PortUnreachable, probe.OtherResponse, probe.SendError,
	} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown response type %q", s)
}
