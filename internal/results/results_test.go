package results_test

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"recordroute/internal/analysis"
	"recordroute/internal/probe"
	"recordroute/internal/results"
	"recordroute/internal/study"
	"recordroute/internal/topology"
)

func sample() map[string][]probe.Result {
	a := func(s string) netip.Addr { return netip.MustParseAddr(s) }
	return map[string][]probe.Result{
		"mlab-0": {
			{
				Spec:         probe.Spec{Dst: a("100.1.0.1"), Kind: probe.PingRR},
				Type:         probe.EchoReply,
				RcvdAt:       12345000, // 12.345ms
				From:         a("100.1.0.1"),
				ReplyIPID:    777,
				HasRR:        true,
				RR:           []netip.Addr{a("100.9.255.1"), a("100.1.0.1")},
				RRTotalSlots: 9,
			},
			{
				Spec: probe.Spec{Dst: a("100.2.0.1"), Kind: probe.PingRR},
				Type: probe.NoResponse,
			},
		},
		"pl-3": {
			{
				Spec:         probe.Spec{Dst: a("100.3.0.1"), Kind: probe.PingRRUDP},
				Type:         probe.PortUnreachable,
				RcvdAt:       999000,
				From:         a("100.3.0.1"),
				HasRR:        true,
				QuotedRR:     true,
				RR:           []netip.Addr{a("100.9.255.2")},
				RRTotalSlots: 9,
			},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := results.Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	back, err := results.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(back) != len(want) {
		t.Fatalf("VPs = %d, want %d", len(back), len(want))
	}
	for vp, rs := range want {
		got := back[vp]
		if len(got) != len(rs) {
			t.Fatalf("%s: %d records, want %d", vp, len(got), len(rs))
		}
		for i := range rs {
			w, g := rs[i], got[i]
			if g.Dst != w.Dst || g.Kind != w.Kind || g.Type != w.Type ||
				g.From != w.From || g.ReplyIPID != w.ReplyIPID ||
				g.RRFull != w.RRFull || g.QuotedRR != w.QuotedRR ||
				g.RRTotalSlots != w.RRTotalSlots || len(g.RR) != len(w.RR) {
				t.Errorf("%s[%d]: got %+v want %+v", vp, i, g, w)
			}
			if g.RTT() != w.RTT() {
				t.Errorf("%s[%d]: rtt %v vs %v", vp, i, g.RTT(), w.RTT())
			}
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"only|three|fields",
		"vp|bogus-kind|100.1.0.1|echo-reply|1|100.1.0.1|0|9|false|false|",
		"vp|ping|not-an-addr|echo-reply|1|100.1.0.1|0|9|false|false|",
		"vp|ping|100.1.0.1|bogus-type|1|100.1.0.1|0|9|false|false|",
		"vp|ping|100.1.0.1|echo-reply|x|100.1.0.1|0|9|false|false|",
	}
	for i, line := range cases {
		if _, err := results.Read(strings.NewReader(line)); err == nil {
			t.Errorf("case %d accepted: %q", i, line)
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	in := "# header\n\nmlab-0|ping|100.1.0.1|timeout|0||0|0|false|false|\n"
	got, err := results.Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["mlab-0"]) != 1 {
		t.Errorf("records = %d", len(got["mlab-0"]))
	}
}

// TestArchivedResultsReanalyze demonstrates the archive's purpose: run
// a study, archive its raw ping-RR results, read them back, and verify
// the re-derived classification matches the live one.
func TestArchivedResultsReanalyze(t *testing.T) {
	cfg := topology.DefaultConfig(topology.Epoch2016).Scale(0.15)
	s, err := study.New(cfg, study.Options{Rate: 200})
	if err != nil {
		t.Fatal(err)
	}
	r := s.RunResponsiveness()

	var buf bytes.Buffer
	if err := results.Write(&buf, r.PerVP); err != nil {
		t.Fatal(err)
	}
	back, err := results.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	liveStats := analysis.AggregateRR(r.PerVP)
	archStats := analysis.AggregateRR(back)
	if len(liveStats) != len(archStats) {
		t.Fatalf("stats sizes: %d vs %d", len(liveStats), len(archStats))
	}
	for dst, live := range liveStats {
		arch := archStats[dst]
		if arch == nil {
			t.Fatalf("%v missing from archive-derived stats", dst)
		}
		if live.RRResponsive() != arch.RRResponsive() || live.MinDestSlot != arch.MinDestSlot {
			t.Errorf("%v: live (%v,%d) vs archived (%v,%d)", dst,
				live.RRResponsive(), live.MinDestSlot, arch.RRResponsive(), arch.MinDestSlot)
		}
	}
}
