//go:build race

package recordroute

// raceEnabled reports whether this test binary was built with -race;
// timing-sensitive tests skip under it.
const raceEnabled = true
