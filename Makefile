# recordroute — build/test/reproduce targets.

GO ?= go

.PHONY: all build test vet bench bench-guard bench-scaling bench-metrics bench-all race chaos study serve fuzz cover examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -shuffle=on ./...

# Headline campaign benchmarks (Table 1, Figure 1 sequential and
# sharded, Figure 2) plus the snapshot/clone scaling suite, archived as
# machine-readable JSON. The record includes gomaxprocs/numcpu per line
# so shard speedups can be judged against the hardware parallelism the
# run actually had; the second invocation re-runs the shard-sensitive
# benchmarks pinned to GOMAXPROCS=4 — but only on hosts with >= 4 CPUs.
# A GOMAXPROCS=4 run on fewer cores measures threads time-slicing, not
# parallelism, and once poisoned an entire baseline (the "negative
# scaling" confound this harness check exists to prevent).
bench:
	( $(GO) test -bench 'BenchmarkTable1ResponseRates|BenchmarkFigure1ClosestVPCDF|BenchmarkFigure1StudyShards|BenchmarkOriginPhase|BenchmarkRouteBuild|BenchmarkFigure2Epochs|BenchmarkBuildVsClone$$|BenchmarkFleetSpinup|BenchmarkLargeScaleCampaign|BenchmarkAblationDecode/reused|BenchmarkSimulatorForwarding' \
		-benchtime 1x -benchmem -run '^$$' . ; \
	  $(GO) test -bench 'BenchmarkScheduleTick' -benchtime 1x -benchmem -run '^$$' ./internal/server ; \
	  n=$$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1); \
	  if [ "$$n" -ge 4 ]; then \
	    GOMAXPROCS=4 $(GO) test -bench 'BenchmarkFigure1StudyShards|BenchmarkOriginPhase|BenchmarkRouteBuild|BenchmarkFleetSpinup' \
		-benchtime 1x -benchmem -run '^$$' . ; \
	  else \
	    echo "bench: skipping GOMAXPROCS=4 re-run: host has $$n CPU(s) < 4 (results would be time-slicing noise)" >&2 ; \
	  fi ) | $(GO) run ./cmd/benchjson > BENCH_parallel.json
	cat BENCH_parallel.json

# Bench-regression smoke: re-run the pinned hot-path benchmarks and fail
# if any allocs/op grew >25% over the checked-in baseline (see
# cmd/benchguard for why allocation counts gate and timings don't).
bench-guard:
	( $(GO) test -bench 'BenchmarkAblationDecode|BenchmarkSimulatorForwarding|BenchmarkBuildVsClone$$|BenchmarkFleetSpinup' \
		-benchtime 1x -benchmem -run '^$$' . ; \
	  $(GO) test -bench 'BenchmarkScheduleTick' -benchtime 1x -benchmem -run '^$$' ./internal/server \
	) | $(GO) run ./cmd/benchguard -baseline BENCH_parallel.json

# Parallelism scaling-efficiency gates: run the three parallel families
# at the host's real core count with pprof captures, then enforce
# per-family floors — the sharded Figure 1 study at >= 3x, the
# destination-sharded origin phase at >= 2x, the parallel route-plane
# build at >= 2.5x, each for width 4 vs width 1. Every gate is
# host-aware — benchguard skips lines whose numcpu/procs cannot run K
# ways in parallel, so this target passes (with a note) on undersized
# hosts instead of flaking. Profiles land in
# bench_scaling.{cpu,mem,mutex,block}.pprof and the raw output in
# bench_scaling.txt; CI archives both.
bench-scaling:
	$(GO) test -bench 'BenchmarkFigure1StudyShards|BenchmarkOriginPhase|BenchmarkRouteBuild' \
		-benchtime 2x -benchmem -run '^$$' \
		-cpuprofile bench_scaling.cpu.pprof -memprofile bench_scaling.mem.pprof \
		-mutexprofile bench_scaling.mutex.pprof -blockprofile bench_scaling.block.pprof \
		. | tee bench_scaling.txt
	$(GO) run ./cmd/benchguard -baseline BENCH_parallel.json -min-speedup 3 < bench_scaling.txt
	$(GO) run ./cmd/benchguard -baseline BENCH_parallel.json -min-speedup 2 \
		-scaling-pin '^BenchmarkOriginPhase/shards=(\d+)$$' < bench_scaling.txt
	$(GO) run ./cmd/benchguard -baseline BENCH_parallel.json -min-speedup 2.5 \
		-scaling-pin '^BenchmarkRouteBuild/workers=(\d+)$$' < bench_scaling.txt

# Like bench, but first captures a reference campaign's metrics
# snapshot (rrstudy -metrics) and embeds it into BENCH_metrics.json, so
# counter deltas archive next to the timings.
bench-metrics:
	$(GO) run ./cmd/rrstudy -scale 0.25 -seed 3 -experiment table1 -metrics BENCH_metrics_snapshot.json > /dev/null
	$(GO) test -bench 'BenchmarkTable1ResponseRates|BenchmarkFigure1ClosestVPCDF|BenchmarkFigure1StudyShards|BenchmarkFigure2Epochs' \
		-benchtime 1x -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -metrics BENCH_metrics_snapshot.json > BENCH_metrics.json
	rm -f BENCH_metrics_snapshot.json
	cat BENCH_metrics.json

# Every benchmark in the tree (per-figure plus ablations and hot paths).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Race-check the concurrent layers: the sharded campaign executor, the
# simulator substrate it runs replicas of, and the campaign service.
race:
	$(GO) test -race ./internal/measure/... ./internal/netsim/... ./internal/study/... ./internal/probe/... ./internal/server/...

# Service-level chaos harness (DESIGN.md §13): deterministic fault
# injection — workers killed mid-phase, journal writes failing at the
# Nth byte, daemon kill + restart + resume, drain racing live streams,
# stalled /stream readers — under the race detector with shuffled test
# order, so lifecycle invariants hold regardless of scheduling.
chaos:
	$(GO) test -race -shuffle=on \
		-run 'TestChaos|TestCancel|TestJobDeadline|TestWorkerPanic|TestStreamWriteDeadline|TestDrain|TestJournal|TestParallelCancel|TestCampaignCancel' \
		./internal/server ./internal/measure

# Reproduce every table and figure at full default scale (~30 s).
study:
	$(GO) run ./cmd/rrstudy

# Run the campaign service daemon (submit jobs with curl; see
# README "Campaign service" and DESIGN.md §11/§16). WORKERS sizes the
# affinity worker pool; TENANT_QUOTA caps per-tenant in-flight jobs
# (0 = unlimited).
WORKERS ?= 2
TENANT_QUOTA ?= 0
serve:
	$(GO) run ./cmd/rrstudyd -workers $(WORKERS) -tenant-quota $(TENANT_QUOTA)

# Short fuzzing passes over the packet decoders, the FIB, and the
# stop-set codec.
fuzz:
	$(GO) test ./internal/packet -fuzz FuzzParsedDecode -fuzztime 30s
	$(GO) test ./internal/packet -fuzz FuzzRecordRouteDecode -fuzztime 15s
	$(GO) test ./internal/packet -fuzz FuzzTimestampDecode -fuzztime 15s
	$(GO) test ./internal/packet -fuzz FuzzDecodeICMPQuoted -fuzztime 30s
	$(GO) test ./internal/netsim -fuzz FuzzFIBLookup -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzStopSetCodec -fuzztime 30s

# Coverage with per-package floors for the simulator core and the
# campaign service (matches CI).
cover:
	$(GO) test -coverprofile=cover.out ./internal/netsim ./internal/probe ./internal/measure ./internal/trace ./internal/server
	$(GO) tool cover -func=cover.out | tail -1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cloudprovider
	$(GO) run ./examples/ttltuning
	$(GO) run ./examples/reversepath
	$(GO) run ./examples/atlas

clean:
	$(GO) clean ./...
