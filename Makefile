# recordroute — build/test/reproduce targets.

GO ?= go

.PHONY: all build test vet bench study fuzz examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# One benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Reproduce every table and figure at full default scale (~30 s).
study:
	$(GO) run ./cmd/rrstudy

# Short fuzzing passes over the packet decoders.
fuzz:
	$(GO) test ./internal/packet -fuzz FuzzParsedDecode -fuzztime 30s
	$(GO) test ./internal/packet -fuzz FuzzRecordRouteDecode -fuzztime 15s
	$(GO) test ./internal/packet -fuzz FuzzTimestampDecode -fuzztime 15s

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cloudprovider
	$(GO) run ./examples/ttltuning
	$(GO) run ./examples/reversepath
	$(GO) run ./examples/atlas

clean:
	$(GO) clean ./...
