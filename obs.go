package recordroute

import (
	"io"
	"net/netip"

	"recordroute/internal/obs"
)

// MetricsSnapshot is a labeled, mergeable capture of simulator
// counters: one per-engine section per shard plus deterministic merged
// totals. Serialize it with encoding/json (map keys sort, so equal
// snapshots are byte-identical) or Snapshot.MarshalIndent.
type MetricsSnapshot = obs.Snapshot

// TraceFilter selects which events an attached trace retains. The
// zero value keeps everything.
type TraceFilter struct {
	// DstPrefix, when valid, keeps only events touching addresses in
	// the prefix — a probe's forward path and its replies both match.
	DstPrefix netip.Prefix
	// VP, when non-empty, keeps only that vantage point's probe
	// lifecycle events (send, retransmit, reply, timeout).
	VP string
}

// TraceHandle is an attached event trace: a bounded ring of
// virtual-clock-stamped probe lifecycle and router/host packet events.
type TraceHandle struct {
	t *obs.Trace
}

// WriteJSONL serializes the retained events to w, one JSON object per
// line, oldest first.
func (h *TraceHandle) WriteJSONL(w io.Writer) error { return h.t.WriteJSONL(w) }

// Len reports how many events are retained.
func (h *TraceHandle) Len() int { return h.t.Len() }

// Dropped reports how many events the bounded ring evicted.
func (h *TraceHandle) Dropped() uint64 { return h.t.Dropped() }

// observe applies the Internet's accumulated observer configuration to
// every engine and prober it owns.
func (in *Internet) observe() {
	in.st.Observe(&in.obsCfg)
}

// AttachTrace installs a bounded event trace (capacity events,
// <= 0 for the 65536 default) over every engine and prober this
// Internet probes through. Attach before running experiments; tracing
// is passive and never changes what a run computes or measures — trace
// capture happens synchronously inside observed events and schedules
// nothing on the virtual clock (see DESIGN.md, "Observability").
func (in *Internet) AttachTrace(f TraceFilter, capacity int) *TraceHandle {
	t := obs.NewTrace(capacity, obs.Filter{DstPrefix: f.DstPrefix, VP: f.VP})
	in.obsCfg.Trace = t
	in.observe()
	return &TraceHandle{t: t}
}

// EnablePerNodeMetrics switches on per-router/per-host counter
// attribution, populating the Nodes sections of later Metrics
// snapshots. Off by default: attribution costs a map probe per counter
// event.
func (in *Internet) EnablePerNodeMetrics() {
	in.obsCfg.PerNode = true
	in.observe()
}

// Metrics captures a labeled snapshot of every engine's counters: the
// shared topology engine plus one section per campaign shard. The
// snapshot's Merged totals are invariant under WithShards for the
// sharding-safe experiments — the determinism contract extends to
// metrics, not just results.
func (in *Internet) Metrics(label string) *MetricsSnapshot {
	return in.st.Metrics(label)
}
