// Package recordroute reproduces "The Record Route Option is an
// Option!" (Goodchild et al., IMC 2017): a measurement toolkit built
// around the IPv4 Record Route option, together with a deterministic
// packet-level Internet simulator to run it against.
//
// The package is the public facade. An Internet value wraps a generated
// topology (autonomous systems, policy routing, routers that stamp RR
// options, rate-limit the options slow path, filter, or hide from
// traceroute) plus vantage points mirroring the paper's M-Lab and
// PlanetLab deployments and per-cloud measurement hosts.
//
// Quick start:
//
//	inet, err := recordroute.New(recordroute.WithScale(0.2))
//	if err != nil { ... }
//	vp := inet.VPNames()[0]
//	reply, err := inet.PingRR(vp, inet.Destinations()[0])
//	fmt.Println(reply.RecordedRoute)
//
// The paper's tables and figures are reproduced by the experiment
// methods (Table1, Figure1Reachability, Figure2Epochs, StampAudit,
// Figure3Clouds, Figure4RateLimit, Figure5TTL), each of which renders
// the corresponding rows/series and returns a machine-readable summary.
package recordroute

import (
	"fmt"
	"time"

	"recordroute/internal/netsim"
	"recordroute/internal/topology"
)

// Epoch selects the modeled interconnection era.
type Epoch int

const (
	// Epoch2016 is the paper's measurement era (the flattened Internet).
	Epoch2016 Epoch = iota
	// Epoch2011 models the sparse-peering era of the §3.4 comparison.
	Epoch2011
)

// options collects construction parameters.
type options struct {
	epoch   Epoch
	scale   float64
	profile string
	seed    uint64
	rate    float64
	timeout time.Duration
	shards  int
	retries int
	faults  *FaultProfile
}

// FaultProfile parameterizes deterministic fault injection ("chaos")
// over the simulated Internet: link loss, jitter, duplication, flaps,
// router outages, ICMP-error suppression, and transient route
// withdrawals, all drawn from the seed so equal seeds give identical
// weather. The zero value injects nothing. Fields mirror the internal
// netsim.FaultConfig; *Frac fields select the afflicted fraction of
// candidates (0 means all, when the matching probability is set).
type FaultProfile struct {
	// Seed drives the fault draws; 0 inherits the Internet's seed.
	Seed uint64
	// LossProb drops packets per direction on LossFrac of links.
	LossProb, LossFrac float64
	// JitterMax adds up to that much extra one-way delay on JitterFrac
	// of links (jittered links may reorder).
	JitterMax  time.Duration
	JitterFrac float64
	// DupProb duplicates packets on DupFrac of links.
	DupProb, DupFrac float64
	// FlapFrac of links go down FlapDown out of every FlapPeriod.
	FlapFrac             float64
	FlapPeriod, FlapDown time.Duration
	// OutageFrac of routers suffer one OutageFor outage starting within
	// OutageSpread.
	OutageFrac              float64
	OutageSpread, OutageFor time.Duration
	// SuppressFrac of routers mute ICMP errors SuppressFor out of every
	// SuppressPeriod.
	SuppressFrac                float64
	SuppressPeriod, SuppressFor time.Duration
	// WithdrawFrac of destination prefixes are transiently withdrawn at
	// their attachment router WithdrawFor out of every WithdrawPeriod.
	WithdrawFrac                float64
	WithdrawPeriod, WithdrawFor time.Duration
	// ChurnFrac of destination prefixes join the long-horizon churn
	// pool: each pooled prefix is withdrawn for a whole fault epoch
	// (the recurring-campaign cadence; see EpochsLive) with per-epoch
	// probability ChurnProb.
	ChurnFrac, ChurnProb float64
}

// faultConfig converts the profile to the internal fault config.
func (p *FaultProfile) faultConfig(seed uint64) *netsim.FaultConfig {
	if p == nil {
		return nil
	}
	fc := netsim.FaultConfig{
		Seed:     p.Seed,
		LossProb: p.LossProb, LossFrac: p.LossFrac,
		JitterMax: p.JitterMax, JitterFrac: p.JitterFrac,
		DupProb: p.DupProb, DupFrac: p.DupFrac,
		FlapFrac: p.FlapFrac, FlapPeriod: p.FlapPeriod, FlapDown: p.FlapDown,
		OutageFrac: p.OutageFrac, OutageSpread: p.OutageSpread, OutageFor: p.OutageFor,
		SuppressFrac: p.SuppressFrac, SuppressPeriod: p.SuppressPeriod, SuppressFor: p.SuppressFor,
		WithdrawFrac: p.WithdrawFrac, WithdrawPeriod: p.WithdrawPeriod, WithdrawFor: p.WithdrawFor,
		ChurnFrac: p.ChurnFrac, ChurnProb: p.ChurnProb,
	}
	if fc.Seed == 0 {
		fc.Seed = seed
	}
	return &fc
}

// Option configures New.
type Option func(*options)

// WithEpoch selects the interconnection era (default Epoch2016).
func WithEpoch(e Epoch) Option { return func(o *options) { o.epoch = e } }

// WithScale multiplies the default topology size (1.0 ≈ 1/100 of the
// paper's scale; tests typically use 0.15–0.3).
func WithScale(f float64) Option { return func(o *options) { o.scale = f } }

// WithScaleProfile selects a named topology size — "small", "medium",
// or "large" (10⁵+ advertised prefixes, approaching the paper's hitlist
// magnitude) — overriding WithScale. Large topologies are built once
// and replicated by snapshot cloning when sharded; see WithShards.
func WithScaleProfile(name string) Option { return func(o *options) { o.profile = name } }

// WithSeed fixes all randomness; equal seeds give identical Internets.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithProbeRate sets the default per-VP probing rate in packets per
// second (default 20, the paper's rate).
func WithProbeRate(pps float64) Option { return func(o *options) { o.rate = pps } }

// WithTimeout sets the per-probe timeout (default 2s of virtual time).
func WithTimeout(d time.Duration) Option { return func(o *options) { o.timeout = d } }

// WithShards sets the campaign executor parallelism for the
// sharding-invariant experiments (Table 1, Figure 1, Figure 2): 0
// (default) uses one shard per runtime.GOMAXPROCS, 1 forces the single
// shared-engine path, k > 1 runs k simulator replicas on a worker pool.
// Sharding applies to the per-VP fan-out and to the single-VP origin
// phases (responsiveness pings, alias IP-ID series), whose destination
// lists fan across the replicas in contiguous ranges. Results are
// identical either way; see DESIGN.md "Parallel execution model" and
// "Destination-sharded origin phases". Figure 4 always runs
// single-engine regardless.
func WithShards(k int) Option { return func(o *options) { o.shards = k } }

// WithFaults installs a deterministic fault-injection plan over the
// built network (see FaultProfile). Faults are part of the seed: equal
// seeds and profiles give identical weather, so faulted runs stay
// byte-reproducible.
func WithFaults(p FaultProfile) Option { return func(o *options) { o.faults = &p } }

// WithRetries gives every probe up to n retransmissions with
// exponential backoff and RTT-adaptive timeouts (default 0: the
// paper's single-shot probing). Useful together with WithFaults to
// measure how much of the fault-induced classification loss retrying
// recovers.
func WithRetries(n int) Option { return func(o *options) { o.retries = n } }

// buildConfig resolves options into a topology configuration.
func buildConfig(opts []Option) (topology.Config, options) {
	o := options{scale: 1, seed: 0, epoch: Epoch2016}
	for _, fn := range opts {
		fn(&o)
	}
	epoch := topology.Epoch2016
	if o.epoch == Epoch2011 {
		epoch = topology.Epoch2011
	}
	cfg := topology.DefaultConfig(epoch)
	if o.scale > 0 && o.scale != 1 {
		cfg = cfg.Scale(o.scale)
	}
	if o.seed != 0 {
		cfg.Seed = o.seed
	}
	cfg.Faults = o.faults.faultConfig(cfg.Seed)
	return cfg, o
}

// validateScale rejects nonsense scales early with a clear error.
func validateScale(f float64) error {
	if f < 0 || f > 100 {
		return fmt.Errorf("recordroute: scale %v out of range (0, 100]", f)
	}
	return nil
}
