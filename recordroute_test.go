package recordroute

import (
	"encoding/json"
	"net/netip"
	"strings"
	"testing"
	"time"
)

// smallInternet builds a fast test Internet.
func smallInternet(t *testing.T) *Internet {
	t.Helper()
	in, err := New(WithScale(0.15), WithProbeRate(200))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewRejectsBadScale(t *testing.T) {
	if _, err := New(WithScale(-1)); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestInternetInventory(t *testing.T) {
	in := smallInternet(t)
	if len(in.VPNames()) == 0 || len(in.Destinations()) == 0 {
		t.Fatal("empty inventory")
	}
	if len(in.CloudNames()) != 3 {
		t.Errorf("clouds = %v", in.CloudNames())
	}
	if in.NumASes() == 0 {
		t.Error("no ASes")
	}
	if len(in.MLabVPs())+len(in.PlanetLabVPs()) != len(in.VPNames()) {
		t.Error("platform split inconsistent")
	}
	if kind, err := in.VPKind(in.MLabVPs()[0]); err != nil || kind != "mlab" {
		t.Errorf("VPKind = %q, %v", kind, err)
	}
	if _, err := in.VPKind("nope"); err == nil {
		t.Error("unknown VP accepted")
	}
}

// respondingDest finds a destination that answers ping-RR from vp.
func respondingDest(t *testing.T, in *Internet, vp string) (dst Reply, addr string) {
	t.Helper()
	for _, d := range in.Destinations() {
		r, err := in.PingRR(vp, d)
		if err != nil {
			t.Fatal(err)
		}
		if r.Responded && len(r.RecordedRoute) > 0 {
			return r, d.String()
		}
	}
	t.Fatal("no destination answered ping-RR")
	return Reply{}, ""
}

func TestPingAndPingRR(t *testing.T) {
	in := smallInternet(t)
	vp := in.MLabVPs()[len(in.MLabVPs())-1] // late VPs are never rate-limited
	reply, addr := respondingDest(t, in, vp)
	if reply.Kind != "echo-reply" {
		t.Errorf("kind = %q", reply.Kind)
	}
	if reply.From.String() != addr {
		t.Errorf("reply from %v, probed %v", reply.From, addr)
	}
	if reply.RTT <= 0 {
		t.Error("non-positive RTT")
	}
	if reply.DestinationStamped && reply.SlotsRemaining < 0 {
		t.Error("inconsistent RR accounting")
	}
}

func TestTracerouteFacade(t *testing.T) {
	in := smallInternet(t)
	vp := in.MLabVPs()[len(in.MLabVPs())-1]
	reply, _ := respondingDest(t, in, vp)
	tr, err := in.Traceroute(vp, reply.From)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Reached {
		t.Fatalf("traceroute did not reach %v", reply.From)
	}
	last := tr.Hops[len(tr.Hops)-1]
	if !last.Final || last.Addr != reply.From {
		t.Errorf("final hop %+v", last)
	}
}

func TestPingRRWithTTLQuotesRoute(t *testing.T) {
	in := smallInternet(t)
	vp := in.MLabVPs()[len(in.MLabVPs())-1]
	reply, _ := respondingDest(t, in, vp)
	low, err := in.PingRRWithTTL(vp, reply.From, 2)
	if err != nil {
		t.Fatal(err)
	}
	if low.Kind != "time-exceeded" {
		t.Fatalf("kind = %q, want time-exceeded", low.Kind)
	}
	if !low.HasRecordRoute {
		t.Error("no RR option recovered from the quoted header")
	}
}

func TestReversePathFacade(t *testing.T) {
	in := smallInternet(t)
	vp := in.MLabVPs()[len(in.MLabVPs())-1]
	// Try nearby destinations (stamped with room to spare) until one
	// yields a non-empty reverse path; a destination whose reply path
	// crosses only non-stamping routers legitimately yields none.
	tried := 0
	for _, d := range in.Destinations() {
		r, err := in.PingRR(vp, d)
		if err != nil {
			t.Fatal(err)
		}
		if !r.DestinationStamped || r.SlotsRemaining <= 2 {
			continue
		}
		tried++
		rp, err := in.ReversePath(vp, d)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Segments < 1 {
			t.Fatal("no segments")
		}
		if len(rp.Hops) > 0 {
			return // success
		}
		if tried >= 5 {
			break
		}
	}
	if tried == 0 {
		t.Skip("no close destination")
	}
	t.Errorf("no reverse path found across %d close destinations", tried)
}

func TestTable1Facade(t *testing.T) {
	in := smallInternet(t)
	var sb strings.Builder
	sum := in.Table1(&sb)
	if sum.Probed == 0 || sum.PingResponsive == 0 || sum.RRResponsive == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.RRRatioByIP <= 0.5 || sum.RRRatioByIP > 1 {
		t.Errorf("by-IP ratio %v", sum.RRRatioByIP)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("render missing header")
	}
	// Cached: a second call is instant and identical.
	again := in.Table1(nil)
	if again != sum {
		t.Error("cached responsiveness differs")
	}
}

func TestRunAllRendersEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	in := smallInternet(t)
	var sb strings.Builder
	rep, err := in.RunAll(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Table1.Probed == 0 || rep.Reachability.ReachableFrac <= 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2", "§3.5", "Figure 3", "Figure 4", "Figure 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestTimeoutOptionApplies(t *testing.T) {
	in := MustNew(WithScale(0.15), WithTimeout(500*time.Millisecond), WithProbeRate(200))
	// An unresponsive address inside the plan times out at the custom
	// timeout, visible as a short virtual-clock run.
	var dead string
	for _, d := range in.Destinations() {
		r, err := in.Ping(in.MLabVPs()[len(in.MLabVPs())-1], d)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Responded {
			dead = d.String()
			break
		}
	}
	if dead == "" {
		t.Skip("every destination responded")
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestPingTSFacade(t *testing.T) {
	in := smallInternet(t)
	vp := in.MLabVPs()[len(in.MLabVPs())-1]
	reply, _ := respondingDest(t, in, vp)
	tsr, err := in.PingTS(vp, reply.From)
	if err != nil {
		t.Fatal(err)
	}
	if !tsr.Responded {
		t.Fatal("ping-ts unanswered by a ping-RR-responsive destination")
	}
	if len(tsr.Entries) == 0 {
		t.Fatal("no timestamp entries")
	}
	for i := 1; i < len(tsr.Entries); i++ {
		if tsr.Entries[i].Millis < tsr.Entries[i-1].Millis {
			t.Errorf("timestamps regress: %+v", tsr.Entries)
		}
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	in := smallInternet(t)
	dst := in.Destinations()[0]
	if _, err := in.Ping("no-such-vp", dst); err == nil {
		t.Error("Ping accepted unknown VP")
	}
	if _, err := in.Traceroute("no-such-vp", dst); err == nil {
		t.Error("Traceroute accepted unknown VP")
	}
	if _, err := in.ReversePath("no-such-vp", dst); err == nil {
		t.Error("ReversePath accepted unknown VP")
	}
	if _, err := in.PingTS("no-such-vp", dst); err == nil {
		t.Error("PingTS accepted unknown VP")
	}
}

func TestCloudVPCanProbe(t *testing.T) {
	in := smallInternet(t)
	cloud := in.CloudNames()[0]
	responded := false
	for _, d := range in.Destinations()[:50] {
		r, err := in.PingRR(cloud, d)
		if err != nil {
			t.Fatal(err)
		}
		if r.Responded {
			responded = true
			break
		}
	}
	if !responded {
		t.Error("cloud VP could not complete any ping-RR")
	}
}

func TestReportMarshalsToJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	in := smallInternet(t)
	rep, err := in.RunAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Table1 != rep.Table1 || back.Atlas != rep.Atlas {
		t.Error("report did not round-trip through JSON")
	}
}

func TestClassifyDestinationFacade(t *testing.T) {
	in := smallInternet(t)
	// A destination known reachable (from the sweep helper).
	vp := in.MLabVPs()[len(in.MLabVPs())-1]
	reply, addr := respondingDest(t, in, vp)
	_ = reply
	c := in.ClassifyDestination(mustAddr(addr))
	if c.Class != "rr-reachable" && c.Class != "reverse-measurable" {
		t.Errorf("class = %q for an RR-answering destination", c.Class)
	}
	if c.BestSlot == 0 {
		t.Error("no best slot for a reachable destination")
	}
}
