package recordroute

import (
	"io"
	"net/netip"

	"recordroute/internal/core"
	"recordroute/internal/probe"
	"recordroute/internal/study"
)

// responsiveness runs (once) and caches the Table 1 measurement every
// other experiment builds on.
func (in *Internet) responsiveness() *study.Responsiveness {
	if in.resp == nil {
		in.resp = in.st.RunResponsiveness()
	}
	return in.resp
}

// Table1Summary is the machine-readable core of the paper's Table 1.
type Table1Summary struct {
	Probed, PingResponsive, RRResponsive int
	// RRRatioByIP is RR-responsive/ping-responsive over addresses
	// (0.75 published); RRRatioByAS the same over ASes (0.82).
	RRRatioByIP, RRRatioByAS float64
}

// Table1 runs the responsiveness study and renders the paper's Table 1
// to w (pass nil to skip rendering).
func (in *Internet) Table1(w io.Writer) Table1Summary {
	r := in.responsiveness()
	if w != nil {
		r.Render(w)
	}
	total := r.Table.ByIP["Total"]
	return Table1Summary{
		Probed:         total.Probed,
		PingResponsive: total.PingResponsive,
		RRResponsive:   total.RRResponsive,
		RRRatioByIP:    r.RRRatioByIP(),
		RRRatioByAS:    r.RRRatioByAS(),
	}
}

// ReachabilitySummary is the machine-readable core of §3.3 / Figure 1.
type ReachabilitySummary struct {
	// ReachableFrac is the fraction of RR-responsive destinations
	// within nine hops of some VP (0.66 published); Within8Frac within
	// eight (≈0.60 published).
	ReachableFrac, Within8Frac float64
	// AliasReclassified and RRUDPReclassified count the §3.3
	// false-negative recoveries.
	AliasReclassified, RRUDPReclassified int
	// GreedyCoverage[k] is the fraction of RR-reachable destinations
	// covered by the best k+1 M-Lab sites (73%…95% published for
	// 1…10 sites).
	GreedyCoverage []float64
}

// Figure1Reachability runs the §3.3 reachability analysis and renders
// Figure 1 to w.
func (in *Internet) Figure1Reachability(w io.Writer) ReachabilitySummary {
	r := in.responsiveness()
	re := in.st.RunReachability(r)
	if w != nil {
		re.Render(w)
	}
	s := ReachabilitySummary{
		ReachableFrac:     re.ReachableFrac,
		Within8Frac:       re.Within8Frac,
		AliasReclassified: re.AliasReclassified,
		RRUDPReclassified: re.RRUDPReclassified,
	}
	reachable := 0
	for _, d := range re.RRResponsive {
		if re.Stats[d].RRReachable() {
			reachable++
		}
	}
	for _, step := range re.Greedy {
		f := 0.0
		if reachable > 0 {
			f = float64(step.TotalCovered) / float64(reachable)
		}
		s.GreedyCoverage = append(s.GreedyCoverage, f)
	}
	return s
}

// EpochSummary is the machine-readable core of §3.4 / Figure 2.
type EpochSummary struct {
	// Reachable2016 and Reachable2011 are the all-VP RR-reachable
	// fractions (0.66 vs 0.12 published).
	Reachable2016, Reachable2011 float64
	// Common2016 and Common2011 restrict to VPs present in both years.
	Common2016, Common2011 float64
}

// Figure2Epochs builds and measures both epochs (an independent 2011
// Internet is generated from the same seed) and renders Figure 2 to w.
func (in *Internet) Figure2Epochs(w io.Writer) (EpochSummary, error) {
	cfg, _ := buildConfig([]Option{
		WithScale(in.opts.scale), WithSeed(in.opts.seed),
		WithProbeRate(in.opts.rate), WithTimeout(in.opts.timeout),
	})
	ec, err := study.RunEpochComparison(cfg, study.Options{Rate: in.opts.rate, Timeout: in.opts.timeout, Shards: in.opts.shards})
	if err != nil {
		return EpochSummary{}, err
	}
	if w != nil {
		ec.Render(w)
	}
	return EpochSummary{
		Reachable2016: ec.ReachableFrac2016,
		Reachable2011: ec.ReachableFrac2011,
		Common2016:    ec.CommonFrac2016,
		Common2011:    ec.CommonFrac2011,
	}, nil
}

// StampAuditSummary is the machine-readable core of §3.5.
type StampAuditSummary struct {
	// ASesAudited is the number of ASes seen in traceroutes; Always,
	// Sometimes, and Never partition them by whether the corresponding
	// ping-RR also recorded them (7040/143/2 of 7185 published).
	ASesAudited, Always, Sometimes, Never int
	// NeverASNs lists the suspected AS-wide no-stamp networks.
	NeverASNs []int
}

// StampAudit runs the §3.5 traceroute/RR comparison (perVPCap
// destinations per M-Lab VP; 0 for the default) and renders it to w.
func (in *Internet) StampAudit(w io.Writer, perVPCap int) StampAuditSummary {
	r := in.responsiveness()
	sa := in.st.RunStampAudit(r, perVPCap)
	if w != nil {
		sa.Render(w)
	}
	return StampAuditSummary{
		ASesAudited: len(sa.Audit.PerAS),
		Always:      len(sa.Audit.Always),
		Sometimes:   len(sa.Audit.Sometimes),
		Never:       len(sa.Audit.Never),
		NeverASNs:   sa.Audit.Never,
	}
}

// CloudSummary is the machine-readable core of §3.6 / Figure 3.
type CloudSummary struct {
	// Within8 maps each cloud to the fraction of RR-responsive (but not
	// M-Lab-reachable) destinations within eight hops of its border
	// (EC2 40%, Softlayer 45% published).
	Within8 map[string]float64
	// MLabMedianHops and CloudMedianHops compare distances to the
	// RR-reachable set.
	MLabMedianHops  float64
	CloudMedianHops map[string]float64
}

// Figure3Clouds runs the §3.6 cloud-distance analysis (sampleCap
// destinations per set; 0 for the default) and renders Figure 3 to w.
func (in *Internet) Figure3Clouds(w io.Writer, sampleCap int) CloudSummary {
	r := in.responsiveness()
	cr := in.st.RunCloudDistance(r, sampleCap)
	if w != nil {
		cr.Render(w)
	}
	return CloudSummary{
		Within8:         cr.Within8,
		MLabMedianHops:  cr.MLabMedian,
		CloudMedianHops: cr.CloudMedian,
	}
}

// RateLimitSummary is the machine-readable core of §4.1 / Figure 4.
type RateLimitSummary struct {
	// ResponsesAt10 and ResponsesAt100 are per-VP RR response counts at
	// the two probing rates.
	ResponsesAt10, ResponsesAt100 map[string]int
	// DrasticDrop lists VPs losing >25% at 100pps (8 of 79 published).
	DrasticDrop []string
}

// Figure4RateLimit runs the §4.1 rate experiment over sampleCap
// RR-responsive destinations (0 for all) and renders Figure 4 to w.
func (in *Internet) Figure4RateLimit(w io.Writer, sampleCap int) RateLimitSummary {
	r := in.responsiveness()
	rl := in.st.RunRateLimit(r, sampleCap)
	if w != nil {
		rl.Render(w)
	}
	s := RateLimitSummary{
		ResponsesAt10:  make(map[string]int),
		ResponsesAt100: make(map[string]int),
		DrasticDrop:    rl.DrasticDrop,
	}
	for vp, v := range rl.PerVP {
		s.ResponsesAt10[vp] = v.At10
		s.ResponsesAt100[vp] = v.At100
	}
	return s
}

// TTLSummary is the machine-readable core of §4.2 / Figure 5.
type TTLSummary struct {
	// ReachableRate and UnreachableRate map initial TTL to destination
	// response rate for the two populations (sweet spot 10–12
	// published: ~70% vs ~25% at TTL 10).
	ReachableRate, UnreachableRate map[uint8]float64
}

// Figure5TTL runs the §4.2 TTL-tradeoff experiment (perVPCap
// destinations per class per VP; 0 for the default) and renders
// Figure 5 to w.
func (in *Internet) Figure5TTL(w io.Writer, perVPCap int) TTLSummary {
	r := in.responsiveness()
	tr := in.st.RunTTLStudy(r, perVPCap)
	if w != nil {
		tr.Render(w)
	}
	return TTLSummary{ReachableRate: tr.ReachableRate, UnreachableRate: tr.UnreachableRate}
}

// AtlasSummary is the §2 complementarity experiment's summary.
type AtlasSummary struct {
	// Interfaces is the alias-collapsed interface count; Both,
	// TracerouteOnly, and RROnly partition it by provenance; RRReverse
	// counts reverse-path interfaces invisible to forward probing.
	Interfaces, Both, TracerouteOnly, RROnly, RRReverse, Links int
	// AnonymousRROnly counts ground-truth TTL-invisible routers that
	// only RR observed.
	AnonymousRROnly int
}

// TopologyAtlas merges all ping-RR results with traceroutes (perVPCap
// destinations per M-Lab VP; 0 for the default) into an interface-level
// atlas and renders the §2 complementarity summary to w.
func (in *Internet) TopologyAtlas(w io.Writer, perVPCap int) AtlasSummary {
	r := in.responsiveness()
	ar := in.st.RunAtlas(r, perVPCap)
	if w != nil {
		ar.Render(w)
	}
	return AtlasSummary{
		Interfaces:      ar.Stats.Interfaces,
		Both:            ar.Stats.Both,
		TracerouteOnly:  ar.Stats.TracerouteOnly,
		RROnly:          ar.Stats.RROnly,
		RRReverse:       ar.Stats.RRReverse,
		Links:           ar.Stats.Links,
		AnonymousRROnly: ar.AnonymousRROnly,
	}
}

// Classification names a destination's §3.1 class ("unresponsive",
// "ping-responsive", "rr-responsive", "rr-reachable",
// "reverse-measurable") with the best RR slot it occupied.
type Classification struct {
	Class    string
	BestSlot int
	// FalseNegativeSignal marks the §3.3 signature: responses with free
	// RR slots but no destination stamp, worth re-testing via alias
	// resolution or ping-RRudp.
	FalseNegativeSignal bool
}

// ClassifyDestination applies the paper's full per-destination
// methodology to dst: a plain ping and a ping-RR from every vantage
// point, plus a ping-RRudp when the first pass shows the false-negative
// signature, all folded through the §3.1 decision rules.
func (in *Internet) ClassifyDestination(dst netip.Addr) Classification {
	var results []probe.Result
	collect := func(kind probe.Kind) {
		for _, vp := range in.st.Camp.VPs {
			vp := vp
			vp.Prober.StartOne(probe.Spec{Dst: dst, Kind: kind}, in.opts.timeout, func(r probe.Result) {
				results = append(results, r)
			})
		}
		in.st.Camp.Eng.Run()
	}
	collect(probe.Ping)
	collect(probe.PingRR)
	v := core.Classify(dst, results, nil)
	if v.FalseNegativeSignal && v.BestSlot == 0 {
		collect(probe.PingRRUDP)
		v = core.Classify(dst, results, nil)
	}
	return Classification{Class: v.Class.String(), BestSlot: v.BestSlot, FalseNegativeSignal: v.FalseNegativeSignal}
}

// RawPingRRResults exposes the per-VP ping-RR results of the cached
// responsiveness run, for archiving with internal/results (the paper
// released its raw datasets the same way).
func (in *Internet) RawPingRRResults() map[string][]probe.Result {
	return in.responsiveness().PerVP
}

// SourceRouteSummary is the historical-contrast summary.
type SourceRouteSummary struct {
	// Probed counts (VP, destination) pairs tried with both primitives;
	// RRRate and LSRRRate are the per-primitive response rates — the
	// 2005-report-vs-this-paper contrast.
	Probed           int
	RRRate, LSRRRate float64
}

// SourceRouteCheck probes the same targets with ping-RR and
// loose-source-routed pings (perVPCap per VP; 0 for the default) and
// renders the contrast to w.
func (in *Internet) SourceRouteCheck(w io.Writer, perVPCap int) SourceRouteSummary {
	r := in.responsiveness()
	sr := in.st.RunSourceRouteCheck(r, perVPCap)
	if w != nil {
		sr.Render(w)
	}
	return SourceRouteSummary{Probed: sr.Probed, RRRate: sr.RRRate(), LSRRRate: sr.LSRRRate()}
}

// DoubletreeSummary is the probe-budget experiment's machine-readable
// core: what Doubletree's shared stop sets saved over naive
// exhaustive traceroutes of the same (VP, destination) pairs.
type DoubletreeSummary struct {
	VPs, Dests, Rounds int
	// NaiveProbes and DTProbes are the two arms' probe budgets;
	// SavedFrac is 1 - DT/naive.
	NaiveProbes, DTProbes int
	SavedFrac             float64
	// StopSetEntries counts the final merged global set's
	// (iface, dst-prefix) entries.
	StopSetEntries int
	// Coverage is the fraction of naive-discovered interfaces
	// Doubletree also discovered.
	Coverage float64
}

// Doubletree runs the Doubletree-vs-naive probe-budget experiment
// (destCap destinations, 0 for the full hitlist; rounds <= 0 means 4)
// and renders the comparison to w.
func (in *Internet) Doubletree(w io.Writer, destCap, rounds int) DoubletreeSummary {
	dr := in.st.RunDoubletree(destCap, rounds)
	if w != nil {
		dr.Render(w)
	}
	return DoubletreeSummary{
		VPs: dr.VPs, Dests: dr.Dests, Rounds: dr.Rounds,
		NaiveProbes: dr.Naive.Probes, DTProbes: dr.DT.Probes,
		SavedFrac:      dr.SavedFrac(),
		StopSetEntries: dr.StopSetLen,
		Coverage:       dr.Coverage(),
	}
}

// RRvsTRSummary is the RR-vs-traceroute path-agreement summary.
type RRvsTRSummary struct {
	// Pairs counts (VP, destination) pairs with both an RR stamp list
	// and a traceroute.
	Pairs int
	// RouterOverlapMedian is the median fraction of RR stamps the
	// traceroute also saw; ASExactFrac and ASAgreeMean score AS-level
	// path agreement over the RR window.
	RouterOverlapMedian float64
	ASExactFrac         float64
	ASAgreeMean         float64
}

// RRvsTraceroute compares each M-Lab VP's ping-RR stamps against
// exhaustive traceroutes of the same destinations (perVPCap per VP; 0
// for the default) and renders the agreement analysis to w.
func (in *Internet) RRvsTraceroute(w io.Writer, perVPCap int) RRvsTRSummary {
	r := in.responsiveness()
	cr := in.st.RunRRvsTR(r, perVPCap)
	if w != nil {
		cr.Render(w)
	}
	return RRvsTRSummary{
		Pairs:               cr.Pairs,
		RouterOverlapMedian: cr.RouterOverlap.Median,
		ASExactFrac:         cr.ASExactFrac,
		ASAgreeMean:         cr.ASAgreeMean,
	}
}

// VPResponseSummary is the §3.2 distribution headline.
type VPResponseSummary struct {
	// AboveTwoThirds is the share of RR-responsive destinations
	// answering more than 2/3 of the VPs (~0.80 published for >90/141).
	AboveTwoThirds float64
}

// VPResponseDistribution computes the §3.2 distribution.
func (in *Internet) VPResponseDistribution() VPResponseSummary {
	return VPResponseSummary{AboveTwoThirds: in.responsiveness().VPResponseDist().AboveTwoThirds}
}

// ChaosScenario pairs a label with the fault profile to sweep in
// ChaosReport.
type ChaosScenario struct {
	Label  string
	Faults FaultProfile
}

// ChaosLevelSummary is one sweep level's machine-readable core.
type ChaosLevelSummary struct {
	Label string
	// SingleShotReachable and RetryReachable are the RR-reachable
	// counts of the degradation and recovery arms.
	SingleShotReachable, RetryReachable int
	// Lost counts baseline-reachable destinations the single-shot arm
	// misclassified under faults; Recovered how many retries plus the
	// §3.3 rescue pipeline won back.
	Lost, Recovered int
}

// ChaosSummary is the machine-readable core of the chaos experiment.
type ChaosSummary struct {
	// BaselineReachable is the fault-free RR-reachable count.
	BaselineReachable int
	// Retries is the recovery arm's retransmission budget.
	Retries int
	Levels  []ChaosLevelSummary
	// Snapshots holds each arm's metrics capture, keyed "baseline",
	// "<label>/single-shot", "<label>/retry". Arms rebuild their
	// Internet from the same seeds, so snapshots reproduce with the
	// sweep.
	Snapshots map[string]*MetricsSnapshot `json:",omitempty"`
}

// ChaosReport runs the fault-injection experiment: each scenario (or
// the default loss/outage sweep when none are given) is measured twice
// on a freshly built faulted Internet — single-shot, then with retries
// and adaptive timeouts — and compared against the fault-free
// baseline. retries <= 0 uses the default budget of 2. The sweep is a
// pure function of the seed, so reports are byte-reproducible.
func (in *Internet) ChaosReport(w io.Writer, retries int, scenarios ...ChaosScenario) (ChaosSummary, error) {
	cfg, _ := buildConfig([]Option{
		WithScale(in.opts.scale), WithSeed(in.opts.seed),
		WithProbeRate(in.opts.rate), WithTimeout(in.opts.timeout),
	})
	var levels []study.ChaosLevel
	for _, sc := range scenarios {
		levels = append(levels, study.ChaosLevel{Label: sc.Label, Faults: *sc.Faults.faultConfig(cfg.Seed)})
	}
	ch, err := study.RunChaos(cfg, study.Options{
		Rate: in.opts.rate, Timeout: in.opts.timeout,
		Shards: in.opts.shards, Retries: retries,
	}, levels)
	if err != nil {
		return ChaosSummary{}, err
	}
	if w != nil {
		ch.Render(w)
	}
	s := ChaosSummary{BaselineReachable: ch.Baseline.RRReachable, Retries: ch.Retries,
		Snapshots: ch.Snapshots}
	for _, st := range ch.Steps {
		s.Levels = append(s.Levels, ChaosLevelSummary{
			Label:               st.Label,
			SingleShotReachable: st.NoRetry.RRReachable,
			RetryReachable:      st.Retry.RRReachable,
			Lost:                st.Lost,
			Recovered:           st.Recovered,
		})
	}
	return s, nil
}

// EpochsLiveSummary is the machine-readable core of the epochs-live
// recurring-campaign experiment.
type EpochsLiveSummary struct {
	// Epochs is the number of consecutive fault epochs measured;
	// Baseline is epoch 0's RR-reachable count.
	Epochs, Baseline int
	// Gained and Lost total the reachability deltas across all
	// consecutive-epoch diffs — the churn the time series observed.
	Gained, Lost int
}

// EpochsLive measures the same Internet across consecutive fault
// epochs under long-horizon route churn — the single-process twin of a
// recurring rrstudyd Schedule. The world is built once; each epoch
// probes a fresh clone with that epoch's derived shuffle seed and churn
// clock, and the per-epoch RR-reachable sets diff into a
// gained/lost/stable time series rendered to w. Without WithFaults a
// default churn-only fault plan is installed. epochs <= 0 runs 3.
func (in *Internet) EpochsLive(w io.Writer, epochs int) (EpochsLiveSummary, error) {
	el, err := study.RunEpochsLive(in.st.Topo.Cfg, study.Options{
		Rate: in.opts.rate, Timeout: in.opts.timeout, Shards: in.opts.shards,
		Retries: in.opts.retries, Adaptive: in.opts.retries > 0,
	}, epochs)
	if err != nil {
		return EpochsLiveSummary{}, err
	}
	if w != nil {
		el.Render(w)
	}
	s := EpochsLiveSummary{Epochs: el.Epochs}
	if recs := el.Index.Epochs(); len(recs) > 0 {
		s.Baseline = len(recs[0].Reachable)
	}
	for _, d := range el.Index.Diffs() {
		s.Gained += len(d.Gained)
		s.Lost += len(d.Lost)
	}
	return s, nil
}

// InstalledFaults describes the fault plan WithFaults installed on
// this Internet ("links=… lossy=… …"); all zeros without WithFaults.
func (in *Internet) InstalledFaults() string { return in.st.Topo.Faults.String() }

// Report bundles every experiment's machine-readable summary, the
// paper-vs-measured record a reproduction run leaves behind.
type Report struct {
	Table1       Table1Summary
	VPResponse   VPResponseSummary
	Reachability ReachabilitySummary
	Epochs       EpochSummary
	StampAudit   StampAuditSummary
	Clouds       CloudSummary
	RateLimit    RateLimitSummary
	TTL          TTLSummary
	Atlas        AtlasSummary
	SourceRoute  SourceRouteSummary
}

// RunAll executes every experiment in paper order, rendering each to w
// (nil suppresses rendering) and returning the combined report.
func (in *Internet) RunAll(w io.Writer) (Report, error) {
	var rep Report
	rep.Table1 = in.Table1(w)
	rep.VPResponse = in.VPResponseDistribution()
	nl(w)
	rep.Reachability = in.Figure1Reachability(w)
	nl(w)
	var err error
	if rep.Epochs, err = in.Figure2Epochs(w); err != nil {
		return rep, err
	}
	nl(w)
	rep.StampAudit = in.StampAudit(w, 0)
	nl(w)
	rep.Clouds = in.Figure3Clouds(w, 0)
	nl(w)
	rep.RateLimit = in.Figure4RateLimit(w, 1000)
	nl(w)
	rep.TTL = in.Figure5TTL(w, 0)
	nl(w)
	rep.Atlas = in.TopologyAtlas(w, 0)
	nl(w)
	rep.SourceRoute = in.SourceRouteCheck(w, 0)
	return rep, nil
}

func nl(w io.Writer) {
	if w != nil {
		io.WriteString(w, "\n")
	}
}
