package recordroute_test

import (
	"fmt"

	"recordroute"
)

// The simplest measurement: build a small deterministic Internet and
// send a ping with the Record Route option.
func ExampleInternet_PingRR() {
	inet := recordroute.MustNew(recordroute.WithScale(0.15), recordroute.WithSeed(1))
	vps := inet.MLabVPs()
	vp := vps[len(vps)-1]

	for _, dst := range inet.Destinations() {
		reply, err := inet.PingRR(vp, dst)
		if err != nil || !reply.Responded || !reply.DestinationStamped {
			continue
		}
		fmt.Println("kind:", reply.Kind)
		fmt.Println("destination stamped:", reply.DestinationStamped)
		fmt.Println("slots used:", len(reply.RecordedRoute))
		break
	}
	// Output:
	// kind: echo-reply
	// destination stamped: true
	// slots used: 9
}

// TTL-limited ping-RR probes expire mid-path, and their Record Route
// contents are read back from the quoted ICMP error (§4.2).
func ExampleInternet_PingRRWithTTL() {
	inet := recordroute.MustNew(recordroute.WithScale(0.15), recordroute.WithSeed(1))
	vps := inet.MLabVPs()
	vp := vps[len(vps)-1]
	dst := inet.Destinations()[0]

	reply, err := inet.PingRRWithTTL(vp, dst, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("kind:", reply.Kind)
	fmt.Println("option recovered from quote:", reply.HasRecordRoute)
	// Output:
	// kind: time-exceeded
	// option recovered from quote: true
}
