// Command cloudprovider reproduces the paper's §3.6 question at demo
// scale: are large cloud providers close enough to end hosts for the
// Record Route option to measure paths back from their users?
//
// It traceroutes from each simulated cloud's border to a sample of
// destinations, compares hop counts against an M-Lab vantage point, and
// prints the per-cloud "within eight hops" share — the criterion for
// measuring reverse paths with RR.
package main

import (
	"fmt"
	"log"
	"os"

	"recordroute"
)

func main() {
	inet, err := recordroute.New(recordroute.WithScale(0.25), recordroute.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cloud providers in this Internet:", inet.CloudNames())
	fmt.Println()

	// A few hand-driven traceroutes first, to see the mechanism.
	cloud := inet.CloudNames()[0]
	shown := 0
	for _, dst := range inet.Destinations() {
		tr, err := inet.Traceroute(cloud, dst)
		if err != nil {
			log.Fatal(err)
		}
		if !tr.Reached {
			continue
		}
		fmt.Printf("traceroute %s → %v: %d hops\n", cloud, dst, len(tr.Hops))
		shown++
		if shown == 3 {
			break
		}
	}
	fmt.Println()

	// The full Figure 3 analysis.
	sum := inet.Figure3Clouds(os.Stdout, 150)
	fmt.Println()
	for _, cloud := range inet.CloudNames() {
		verdict := "a strong RR vantage point"
		if sum.Within8[cloud] < 0.3 {
			verdict = "a weaker RR vantage point"
		}
		fmt.Printf("%s reaches %.0f%% of RR-responsive hosts within 8 hops → %s\n",
			cloud, 100*sum.Within8[cloud], verdict)
	}
}
