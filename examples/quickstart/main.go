// Command quickstart builds a small simulated Internet, sends a ping
// with the Record Route option from an M-Lab-like vantage point to a
// destination, and prints the recorded route — the paper's core
// measurement in a dozen lines.
package main

import (
	"fmt"
	"log"

	"recordroute"
)

func main() {
	inet, err := recordroute.New(recordroute.WithScale(0.2), recordroute.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	vps := inet.MLabVPs()
	vp := vps[len(vps)-1]
	fmt.Printf("simulated Internet: %d ASes, %d destinations, %d vantage points\n",
		inet.NumASes(), len(inet.Destinations()), len(inet.VPNames()))
	fmt.Printf("probing from %s\n\n", vp)

	shown := 0
	for _, dst := range inet.Destinations() {
		reply, err := inet.PingRR(vp, dst)
		if err != nil {
			log.Fatal(err)
		}
		if !reply.Responded {
			continue
		}
		fmt.Printf("ping-RR %v → %s in %v\n", dst, reply.Kind, reply.RTT)
		if len(reply.RecordedRoute) == 0 {
			fmt.Println("  (reply carried no Record Route option)")
		}
		for i, hop := range reply.RecordedRoute {
			marker := ""
			if hop == dst {
				marker = "  ← destination (RR-reachable!)"
			}
			fmt.Printf("  slot %d: %-16v AS%d%s\n", i+1, hop, inet.OriginASN(hop), marker)
		}
		if reply.DestinationStamped {
			fmt.Printf("  %d slots to spare: the reverse path is measurable from here\n",
				reply.SlotsRemaining)
		} else {
			fmt.Println("  destination did not appear: beyond the nine hop limit (or not honoring RR)")
		}
		fmt.Println()
		shown++
		if shown == 5 {
			break
		}
	}
}
