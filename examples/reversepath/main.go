// Command reversepath demonstrates the measurement the paper's
// reachability analysis ultimately enables: Reverse Traceroute. Using
// stitched, source-spoofed ping-RR probes, it measures the path *from*
// a destination *back to* a vantage point — the direction ordinary
// traceroute cannot see — and compares it with the forward path.
package main

import (
	"fmt"
	"log"

	"recordroute"
)

func main() {
	inet, err := recordroute.New(recordroute.WithScale(0.2), recordroute.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	vps := inet.MLabVPs()
	vp := vps[len(vps)-1]

	measured := 0
	for _, dst := range inet.Destinations() {
		// Reverse paths need the destination within eight RR hops of
		// some vantage point; check with a plain ping-RR first.
		probe, err := inet.PingRR(vp, dst)
		if err != nil {
			log.Fatal(err)
		}
		if !probe.DestinationStamped || probe.SlotsRemaining == 0 {
			continue
		}

		fwd, err := inet.Traceroute(vp, dst)
		if err != nil {
			log.Fatal(err)
		}
		rev, err := inet.ReversePath(vp, dst)
		if err != nil {
			fmt.Printf("reverse path to %v failed: %v\n", dst, err)
			continue
		}

		fmt.Printf("destination %v (AS%d):\n", dst, inet.OriginASN(dst))
		fmt.Printf("  forward  (%s → dst): %d hops via traceroute\n", vp, len(fwd.Hops))
		fmt.Printf("  reverse  (dst → %s): %d hops via %d stitched RR measurements (complete=%v)\n",
			vp, len(rev.Hops), rev.Segments, rev.Complete)
		for i, hop := range rev.Hops {
			fmt.Printf("    %2d. %-16v AS%d\n", i+1, hop, inet.OriginASN(hop))
		}
		fmt.Println()
		measured++
		if measured == 3 {
			break
		}
	}
	if measured == 0 {
		fmt.Println("no destination was within reverse-path range of", vp)
	}
}
