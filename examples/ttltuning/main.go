// Command ttltuning reproduces §4.2 at demo scale: pick an initial TTL
// for ping-RR probes that lets probes to out-of-range destinations
// expire early (sparing router slow paths and rate limiters) while
// still reaching in-range destinations.
//
// It first shows the mechanism on a single destination — the same probe
// at several TTLs, with the Record Route contents read back from the
// quoted header of Time Exceeded errors — then runs the Figure 5 sweep.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"

	"recordroute"
)

func main() {
	inet, err := recordroute.New(recordroute.WithScale(0.2), recordroute.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	vps := inet.MLabVPs()
	vp := vps[len(vps)-1]

	// Find a reachable destination to demonstrate on.
	var dst string
	for _, d := range inet.Destinations() {
		r, err := inet.PingRR(vp, d)
		if err != nil {
			log.Fatal(err)
		}
		if r.DestinationStamped {
			dst = d.String()
			break
		}
	}
	if dst == "" {
		log.Fatal("no RR-reachable destination in this Internet")
	}

	fmt.Printf("the same ping-RR from %s to %s at increasing initial TTLs:\n\n", vp, dst)
	for _, ttl := range []uint8{2, 4, 8, 12, 64} {
		reply, err := inet.PingRRWithTTL(vp, mustParse(dst), ttl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ttl=%-3d → %-15s %d RR slots recorded", ttl, reply.Kind, len(reply.RecordedRoute))
		if reply.Kind == "time-exceeded" {
			fmt.Printf(" (read from the quoted header at no cost to the destination)")
		}
		if reply.DestinationStamped {
			fmt.Printf(" (reached the destination)")
		}
		fmt.Println()
	}
	fmt.Println()

	// The full Figure 5 sweep.
	sum := inet.Figure5TTL(os.Stdout, 100)
	fmt.Println()
	best := uint8(0)
	bestScore := -1.0
	for ttl, r := range sum.ReachableRate {
		if ttl > 23 {
			continue
		}
		score := r - sum.UnreachableRate[ttl]
		if score > bestScore {
			best, bestScore = ttl, score
		}
	}
	fmt.Printf("best tradeoff in this Internet: initial TTL %d (reachable %.0f%% vs unreachable %.0f%%)\n",
		best, 100*sum.ReachableRate[best], 100*sum.UnreachableRate[best])
	fmt.Println("the paper recommends TTLs between 10 and 12 on the real Internet")
}

func mustParse(s string) netip.Addr { return netip.MustParseAddr(s) }
