// Command atlas demonstrates the paper's §2 claim that Record Route and
// traceroute complement each other: it merges both measurement types
// into an interface-level topology map and reports what each uncovered
// that the other could not — reverse-path hops and TTL-invisible
// routers for RR, non-stamping routers and far hops for traceroute.
package main

import (
	"fmt"
	"log"
	"os"

	"recordroute"
)

func main() {
	inet, err := recordroute.New(recordroute.WithScale(0.25), recordroute.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("merging ping-RR and traceroute views of a %d-AS Internet…\n\n", inet.NumASes())
	sum := inet.TopologyAtlas(os.Stdout, 100)

	fmt.Println()
	rrShare := float64(sum.RROnly) / float64(sum.Interfaces)
	trShare := float64(sum.TracerouteOnly) / float64(sum.Interfaces)
	fmt.Printf("neither primitive suffices alone: traceroute misses %.0f%% of observed\n", 100*rrShare)
	fmt.Printf("interfaces (reverse paths, hidden routers) and RR misses %.0f%%\n", 100*trShare)
	fmt.Printf("(non-stamping routers, hops beyond nine slots).\n")
	if sum.AnonymousRROnly > 0 {
		fmt.Printf("\n%d routers in this Internet never decrement TTL — no traceroute will\n", sum.AnonymousRROnly)
		fmt.Println("ever show them, yet they appear in Record Route headers.")
	}
}
