//go:build !race

package recordroute

const raceEnabled = false
