// Command benchguard compares a fresh `go test -bench` run against the
// checked-in BENCH_parallel.json baseline and fails (exit 1) when a
// pinned hot-path benchmark regresses its allocs/op beyond the
// tolerance. It is the CI bench-regression smoke: timing is too noisy
// to gate on in shared runners, but allocation counts are deterministic
// for these paths, so a jump means a real code change — a lost
// preallocation, a broken copy-on-write share, an accidental per-packet
// allocation.
//
//	go test -bench 'BuildVsClone|FleetSpinup' -benchtime 1x -benchmem -run '^$' . |
//	    go run ./cmd/benchguard -baseline BENCH_parallel.json
//
// Benchmarks present in only one of the two sides are reported but do
// not fail the run (the baseline regenerates via `make bench`, which may
// trail a freshly added benchmark by one commit). Baseline entries are
// keyed by (name, GOMAXPROCS, numcpu) and compared only when the
// current line ran under the same host shape — parallel stages size
// worker fleets and per-shard arenas from both knobs, so a 1-CPU
// baseline says nothing about a 16-CPU run; mismatches are reported
// and skipped (exit 0). Benchmarks matching -pin that exist on both
// sides under the same shape must stay within -tolerance; everything
// else is informational.
//
// With -min-speedup N (> 0), the guard additionally enforces shard
// scaling efficiency on the current run alone — no baseline needed:
// among benchmark lines matching -scaling-pin (whose one capture group
// is the shard count K), every K > 1 line must run at least N× faster
// than the K = 1 line at the same GOMAXPROCS. The gate is host-aware:
// a line is only eligible when the host could actually run K shards in
// parallel — its procs and its numcpu metric (reported by the benchmark
// itself; this process's runtime.NumCPU as fallback) must both be >= K.
// On undersized hosts the gate prints what it skipped and passes, so a
// laptop or a 1-CPU container never fails spuriously:
//
//	go test -bench 'Figure1StudyShards' -benchtime 2x -run '^$' . |
//	    go run ./cmd/benchguard -baseline BENCH_parallel.json -min-speedup 3
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"

	"recordroute/internal/benchfmt"
)

// defaultPin covers the hot paths the repo's perf PRs optimized:
// packet decode reuse, raw forwarding, snapshot cloning, fleet
// spin-up, and the scheduler's per-epoch tick. A regression in any of
// their allocation counts is a structural change, not noise.
const defaultPin = `^(BenchmarkAblationDecode/reused|BenchmarkSimulatorForwarding|BenchmarkBuildVsClone|BenchmarkFleetSpinup|BenchmarkScheduleTick)`

// defaultScalingPin selects the shard-scaling benchmark family; the
// capture group is the shard count K.
const defaultScalingPin = `^BenchmarkFigure1StudyShards/shards=(\d+)$`

// baseline mirrors the parts of cmd/benchjson's Record that the guard
// reads back.
type baseline struct {
	Results []struct {
		Name    string             `json:"name"`
		Procs   int                `json:"procs"`
		Numcpu  int                `json:"numcpu"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"results"`
}

// hostKey identifies the execution shape a benchmark line ran under:
// allocation counts are only comparable between runs with the same
// GOMAXPROCS and the same CPU count — parallel stages size scratch
// pools, worker fleets, and per-shard arenas from both, so comparing a
// 1-CPU baseline against a 16-CPU run reports phantom regressions.
type hostKey struct {
	name   string
	procs  int
	numcpu int
}

func main() {
	basePath := flag.String("baseline", "BENCH_parallel.json", "baseline record written by cmd/benchjson")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional allocs/op increase over baseline")
	pin := flag.String("pin", defaultPin, "regexp of benchmark names whose regressions fail the run")
	minSpeedup := flag.Float64("min-speedup", 0, "when > 0, require shards=K lines (K>1) to beat shards=1 by this factor; host-aware no-op when numcpu or procs < K")
	scalingPin := flag.String("scaling-pin", defaultScalingPin, "regexp selecting shard-scaling lines; capture group 1 is the shard count")
	flag.Parse()

	pinRE, err := regexp.Compile(*pin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: bad -pin:", err)
		os.Exit(2)
	}
	scalingRE, err := regexp.Compile(*scalingPin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: bad -scaling-pin:", err)
		os.Exit(2)
	}
	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *basePath, err)
		os.Exit(2)
	}
	// Key on (name, procs, numcpu): a baseline entry is only comparable
	// when the current line ran under the same GOMAXPROCS and CPU count
	// (see hostKey). Entries from an older benchjson without per-result
	// numcpu (zero) act as a wildcard on that axis.
	baseAllocs := make(map[hostKey]float64)
	baseNames := make(map[string]bool)
	for _, r := range base.Results {
		a, ok := r.Metrics["allocs/op"]
		if !ok {
			continue
		}
		baseAllocs[hostKey{r.Name, r.Procs, r.Numcpu}] = a
		baseNames[r.Name] = true
	}
	lookup := func(name string, procs, numcpu int) (float64, bool) {
		if a, ok := baseAllocs[hostKey{name, procs, numcpu}]; ok {
			return a, true
		}
		a, ok := baseAllocs[hostKey{name, procs, 0}] // pre-numcpu baseline
		return a, ok
	}

	failed := false
	checked, mismatched := 0, 0
	var lines []benchfmt.Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		r, ok := benchfmt.ParseLine(sc.Text())
		if !ok {
			continue
		}
		lines = append(lines, r)
		cur, ok := r.Metrics["allocs/op"]
		if !ok {
			continue
		}
		ncpu := runtime.NumCPU()
		if v, has := r.Metrics["numcpu"]; has && v > 0 {
			ncpu = int(v)
		}
		want, ok := lookup(r.Name, r.Procs, ncpu)
		if !ok {
			if baseNames[r.Name] {
				// The baseline knows this benchmark but only from a
				// different host shape — informational, never a failure.
				if pinRE.MatchString(r.Name) {
					mismatched++
				}
				fmt.Printf("benchguard: %-50s %8.0f allocs/op (baseline from different procs/numcpu, skipped)\n", r.Name, cur)
			} else {
				fmt.Printf("benchguard: %-50s %8.0f allocs/op (no baseline, skipped)\n", r.Name, cur)
			}
			continue
		}
		limit := want * (1 + *tolerance)
		status := "ok"
		if cur > limit {
			if pinRE.MatchString(r.Name) {
				status = "REGRESSION"
				failed = true
			} else {
				status = "regressed (unpinned)"
			}
		}
		if pinRE.MatchString(r.Name) {
			checked++
		}
		fmt.Printf("benchguard: %-50s %8.0f vs baseline %8.0f allocs/op  %s\n", r.Name, cur, want, status)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	scalingOK := true
	if *minSpeedup > 0 {
		scalingOK = checkScaling(lines, scalingRE, *minSpeedup)
	}
	// A run with no pinned allocs benchmark is a harness wiring error —
	// unless the invocation is a scaling-gate run (whose input
	// legitimately holds only the scaling benchmark family), or every
	// pinned match was skipped because the baseline came from a host
	// with different procs/numcpu (a mismatched host is not miswiring).
	if checked == 0 && *minSpeedup <= 0 {
		if mismatched > 0 {
			fmt.Printf("benchguard: %d pinned benchmark(s) skipped: baseline host shape differs; nothing to compare\n", mismatched)
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "benchguard: no pinned benchmark matched both the run and the baseline")
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: allocs/op regression beyond %.0f%% tolerance\n", *tolerance*100)
		os.Exit(1)
	}
	if !scalingOK {
		fmt.Fprintf(os.Stderr, "benchguard: shard scaling below the %.2fx floor\n", *minSpeedup)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d pinned benchmark(s) within %.0f%% of baseline\n", checked, *tolerance*100)
}

// checkScaling enforces the -min-speedup floor over the current run's
// shard-scaling lines: each K>1 line is compared against the K=1 line
// of the same benchmark family at the same GOMAXPROCS. Families are
// the name up to the captured K, so one -scaling-pin may span several
// benchmark families (e.g. Figure1StudyShards and OriginPhase) without
// cross-contaminating their baselines. Lines on hosts that cannot run
// K ways in parallel (procs < K, or the line's numcpu metric — this
// process's runtime.NumCPU when absent — below K) are skipped with a
// note instead of failing: undersized hardware is not a regression.
func checkScaling(lines []benchfmt.Result, re *regexp.Regexp, min float64) bool {
	type famKey struct {
		family string
		procs  int
	}
	base := make(map[famKey]benchfmt.Result) // (family, GOMAXPROCS) → K=1 line
	type scaledLine struct {
		r   benchfmt.Result
		k   int
		fam string
	}
	var scaled []scaledLine
	for _, r := range lines {
		idx := re.FindStringSubmatchIndex(r.Name)
		if idx == nil || len(idx) < 4 || idx[2] < 0 {
			continue
		}
		k, err := strconv.Atoi(r.Name[idx[2]:idx[3]])
		if err != nil || k < 1 {
			continue
		}
		family := r.Name[:idx[2]]
		if k == 1 {
			base[famKey{family, r.Procs}] = r
		} else {
			scaled = append(scaled, scaledLine{r, k, family})
		}
	}
	ok := true
	eligible := 0
	for _, s := range scaled {
		b, have := base[famKey{s.fam, s.r.Procs}]
		if !have || b.NsPerOp <= 0 || s.r.NsPerOp <= 0 {
			fmt.Printf("benchguard: %-50s no K=1 line for %s at procs=%d, scaling unchecked\n", s.r.Name, s.fam, s.r.Procs)
			continue
		}
		ncpu := runtime.NumCPU()
		if v, has := s.r.Metrics["numcpu"]; has && v > 0 {
			ncpu = int(v)
		}
		if s.r.Procs < s.k || ncpu < s.k {
			fmt.Printf("benchguard: %-50s scaling gate skipped: host undersized (procs=%d numcpu=%d < shards=%d)\n",
				s.r.Name, s.r.Procs, ncpu, s.k)
			continue
		}
		eligible++
		speedup := b.NsPerOp / s.r.NsPerOp
		status := "ok"
		if speedup < min {
			status = "SCALING REGRESSION"
			ok = false
		}
		fmt.Printf("benchguard: %-50s %.2fx speedup over shards=1 (floor %.2fx)  %s\n",
			s.r.Name, speedup, min, status)
	}
	if eligible == 0 {
		fmt.Println("benchguard: scaling gate: no eligible line on this host; skipping")
	}
	return ok
}
