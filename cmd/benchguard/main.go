// Command benchguard compares a fresh `go test -bench` run against the
// checked-in BENCH_parallel.json baseline and fails (exit 1) when a
// pinned hot-path benchmark regresses its allocs/op beyond the
// tolerance. It is the CI bench-regression smoke: timing is too noisy
// to gate on in shared runners, but allocation counts are deterministic
// for these paths, so a jump means a real code change — a lost
// preallocation, a broken copy-on-write share, an accidental per-packet
// allocation.
//
//	go test -bench 'BuildVsClone|FleetSpinup' -benchtime 1x -benchmem -run '^$' . |
//	    go run ./cmd/benchguard -baseline BENCH_parallel.json
//
// Benchmarks present in only one of the two sides are reported but do
// not fail the run (the baseline regenerates via `make bench`, which may
// trail a freshly added benchmark by one commit). Benchmarks matching
// -pin that exist on both sides must stay within -tolerance; everything
// else is informational.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"recordroute/internal/benchfmt"
)

// defaultPin covers the hot paths the repo's perf PRs optimized:
// packet decode reuse, raw forwarding, snapshot cloning, and fleet
// spin-up. A regression in any of their allocation counts is a
// structural change, not noise.
const defaultPin = `^(BenchmarkAblationDecode/reused|BenchmarkSimulatorForwarding|BenchmarkBuildVsClone|BenchmarkFleetSpinup)`

// baseline mirrors the parts of cmd/benchjson's Record that the guard
// reads back.
type baseline struct {
	Results []struct {
		Name    string             `json:"name"`
		Procs   int                `json:"procs"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"results"`
}

func main() {
	basePath := flag.String("baseline", "BENCH_parallel.json", "baseline record written by cmd/benchjson")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional allocs/op increase over baseline")
	pin := flag.String("pin", defaultPin, "regexp of benchmark names whose regressions fail the run")
	flag.Parse()

	pinRE, err := regexp.Compile(*pin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: bad -pin:", err)
		os.Exit(2)
	}
	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *basePath, err)
		os.Exit(2)
	}
	// Key on name alone, preferring the single-proc entry when the
	// baseline holds several GOMAXPROCS runs of one benchmark: the CI
	// smoke runs at default procs, and allocs/op is procs-independent
	// for these single-threaded-engine paths anyway.
	baseAllocs := make(map[string]float64)
	seenProcs := make(map[string]int)
	for _, r := range base.Results {
		a, ok := r.Metrics["allocs/op"]
		if !ok {
			continue
		}
		if p, dup := seenProcs[r.Name]; dup && p <= r.Procs {
			continue
		}
		baseAllocs[r.Name] = a
		seenProcs[r.Name] = r.Procs
	}

	failed := false
	checked := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		r, ok := benchfmt.ParseLine(sc.Text())
		if !ok {
			continue
		}
		cur, ok := r.Metrics["allocs/op"]
		if !ok {
			continue
		}
		want, ok := baseAllocs[r.Name]
		if !ok {
			fmt.Printf("benchguard: %-50s %8.0f allocs/op (no baseline, skipped)\n", r.Name, cur)
			continue
		}
		limit := want * (1 + *tolerance)
		status := "ok"
		if cur > limit {
			if pinRE.MatchString(r.Name) {
				status = "REGRESSION"
				failed = true
			} else {
				status = "regressed (unpinned)"
			}
		}
		if pinRE.MatchString(r.Name) {
			checked++
		}
		fmt.Printf("benchguard: %-50s %8.0f vs baseline %8.0f allocs/op  %s\n", r.Name, cur, want, status)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no pinned benchmark matched both the run and the baseline")
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: allocs/op regression beyond %.0f%% tolerance\n", *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d pinned benchmark(s) within %.0f%% of baseline\n", checked, *tolerance*100)
}
