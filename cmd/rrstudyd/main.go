// Command rrstudyd is the campaign service daemon: it accepts study
// jobs over HTTP, executes them on a bounded worker pool against a
// frozen-plane topology cache, streams per-VP results as JSON lines
// while campaigns run, and checkpoints every job to a journal so a
// killed campaign resumes instead of restarting.
//
// Usage:
//
//	rrstudyd [-addr :8080] [-workers 2] [-queue 16] [-cache 4] [-data DIR]
//	         [-job-deadline 30m] [-max-retries 2] [-retry-backoff 500ms]
//	         [-journal-fsync] [-stream-timeout 30s]
//	         [-tenant-quota 0] [-tenant-rate 0] [-tenant-burst 0]
//
// Endpoints:
//
//	POST   /jobs                 submit {"experiment":"table1","scale":0.25,...}
//	GET    /jobs/{id}            status + progress
//	DELETE /jobs/{id}            cancel (honored at the next checkpoint)
//	GET    /jobs/{id}/stream     live JSONL result stream
//	GET    /jobs/{id}/render     the finished table
//	POST   /schedules            recurring campaign {"job":{...},"epochs":3}
//	GET    /schedules            list schedules
//	GET    /schedules/{id}       schedule status + cursor
//	DELETE /schedules/{id}       cancel the schedule and its in-flight epoch
//	GET    /schedules/{id}/diff  epoch-over-epoch reachability churn table
//	GET    /metrics              Prometheus text format
//	GET    /healthz              liveness
//	GET    /readyz               readiness (503 while draining)
//
// Submissions name a tenant via the X-Tenant header ("default" when
// absent). A tenant past -tenant-quota in-flight jobs, or out of
// -tenant-rate/-tenant-burst tokens, is refused with 429 and a
// Retry-After — per-tenant QoS, distinct from the shared-queue 503.
// Submissions beyond the queue capacity are refused with 503 (and a
// Retry-After), so a flood degrades into backpressure rather than
// memory growth. Failed attempts are classified (DESIGN.md §13):
// environmental failures — a crashed worker, a dead shard, an expired
// -job-deadline — are retried up to -max-retries times with capped
// exponential backoff, each retry resuming from the job's journal;
// deterministic failures (bad spec, topology build) fail immediately.
// SIGTERM/SIGINT drain gracefully: accepted jobs finish, new ones are
// refused, then the listener closes. A SIGKILL mid-run is also safe —
// each job's journal keeps its completed batches, and resubmitting
// with {"journal": "<path>", "resume": true} picks up where it stopped
// (DESIGN.md §11).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"recordroute/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rrstudyd: ")
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		workers = flag.Int("workers", 2, "campaigns executed concurrently")
		queue   = flag.Int("queue", 16, "accepted-but-not-running jobs before submissions get 503")
		cache   = flag.Int("cache", 4, "frozen topology planes kept (distinct configs)")
		data    = flag.String("data", "", "journal directory (default: <tmp>/rrstudyd)")

		deadline = flag.Duration("job-deadline", 30*time.Minute,
			"wall-clock budget per job attempt; an expired attempt is retried resuming from its journal (0 = unlimited)")
		retries = flag.Int("max-retries", 2,
			"retry budget per job for environmental failures (0 disables retries)")
		backoff = flag.Duration("retry-backoff", 500*time.Millisecond,
			"delay before a job's first retry; doubles per retry, capped at 30s")
		fsync = flag.Bool("journal-fsync", false,
			"fsync the journal after every checkpoint (crash-safe past machine crashes, at an I/O cost)")
		streamTO = flag.Duration("stream-timeout", 30*time.Second,
			"per-write deadline for /stream clients; stalled readers are dropped (0 = never)")

		tenantQuota = flag.Int("tenant-quota", 0,
			"max in-flight jobs per tenant before 429 (0 = unlimited)")
		tenantRate = flag.Float64("tenant-rate", 0,
			"token-bucket refill per tenant, submissions/second (0 = no bucket)")
		tenantBurst = flag.Float64("tenant-burst", 0,
			"token-bucket depth per tenant (0 = the rate, min 1)")
	)
	flag.Parse()

	// Config uses 0 = "the default (2)" and negative = "disabled"; at the
	// flag surface 0 means what an operator expects — no retries.
	maxRetries := *retries
	if maxRetries <= 0 {
		maxRetries = -1
	}
	streamTimeout := *streamTO
	if streamTimeout <= 0 {
		streamTimeout = -1
	}
	svc, err := server.New(server.Config{
		Workers:            *workers,
		QueueCap:           *queue,
		CacheCap:           *cache,
		DataDir:            *data,
		JobDeadline:        *deadline,
		MaxRetries:         maxRetries,
		RetryBackoff:       *backoff,
		JournalFsync:       *fsync,
		StreamWriteTimeout: streamTimeout,
		TenantQuota:        *tenantQuota,
		TenantRate:         *tenantRate,
		TenantBurst:        *tenantBurst,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (%d workers, queue %d, cache %d, deadline %v, retries %d)",
		*addr, *workers, *queue, *cache, *deadline, *retries)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("%v: draining (accepted jobs finish, new ones get 503)", s)
		svc.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		log.Print("drained")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
