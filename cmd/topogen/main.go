// Command topogen generates a synthetic Internet topology and exports
// its datasets in the study's text formats: the advertised-prefix table
// (RouteViews-style), the per-prefix hitlist, and the AS classification
// (CAIDA as2types-style).
//
// Usage:
//
//	topogen [-scale 1.0] [-seed N] [-epoch 2016] [-out DIR]
//
// Without -out, a summary is printed; with it, prefixes.txt,
// hitlist.txt, and astypes.txt are written to DIR.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"

	"recordroute/internal/analysis"
	"recordroute/internal/dataset"
	"recordroute/internal/hitlist"
	"recordroute/internal/probe"
	"recordroute/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")
	var (
		scale    = flag.Float64("scale", 1.0, "topology scale factor")
		seed     = flag.Uint64("seed", 0, "random seed (0 = built-in default)")
		epoch    = flag.String("epoch", "2016", "interconnection era: 2016 or 2011")
		out      = flag.String("out", "", "directory to write dataset files into")
		dot      = flag.Bool("dot", false, "emit the AS relationship graph in Graphviz DOT format")
		discover = flag.Bool("discover", false, "run hitlist discovery (ping sweep) instead of trusting the ground-truth hitlist")
	)
	flag.Parse()

	e := topology.Epoch2016
	if *epoch == "2011" {
		e = topology.Epoch2011
	} else if *epoch != "2016" {
		log.Fatalf("unknown epoch %q", *epoch)
	}
	cfg := topology.DefaultConfig(e)
	if *scale != 1.0 {
		cfg = cfg.Scale(*scale)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	topo, err := topology.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	d := dataset.FromTopology(topo)

	roleCount := make(map[string]int)
	routers := 0
	for i, as := range topo.ASes {
		roleCount[as.Role.String()]++
		routers += len(topo.Routers[i])
	}
	fmt.Printf("epoch %s, seed %d\n", cfg.Epoch, cfg.Seed)
	fmt.Printf("%d ASes, %d routers, %d advertised prefixes, %d VPs (+%d clouds)\n",
		len(topo.ASes), routers, len(d.Prefixes), len(topo.VPs), len(topo.CloudVPs))
	for _, role := range []string{"tier1", "transit", "access", "enterprise", "content", "unknown-stub", "cloud"} {
		fmt.Printf("  %-13s %4d\n", role, roleCount[role])
	}
	printPathStats(topo)

	if *dot {
		writeDOT(os.Stdout, topo)
	}
	if *discover {
		runDiscovery(topo, d)
	}
	if *out == "" {
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write("prefixes.txt", func(f *os.File) error { return d.WritePrefixes(f) })
	write("hitlist.txt", func(f *os.File) error { return d.WriteHitlist(f) })
	write("astypes.txt", func(f *os.File) error { return d.WriteASTypes(f) })
}

// printPathStats samples oracle paths from every platform VP to a
// spread of destinations and prints the router-hop distribution — the
// quantity Figure 1's reachability depends on.
func printPathStats(topo *topology.Topology) {
	var hops []float64
	step := len(topo.Dests)/200 + 1
	for _, vp := range topo.VPs {
		for i := 0; i < len(topo.Dests); i += step {
			if p := topo.ForwardStampPath(vp.Addr, topo.Dests[i].Addr); p != nil {
				hops = append(hops, float64(len(p)))
			}
		}
	}
	d := analysis.Describe(hops)
	fmt.Printf("router-level path lengths (VP → destination, %d samples):\n", d.N)
	fmt.Printf("  min %.0f / median %.0f / mean %.1f / p90 %.0f / max %.0f\n",
		d.Min, d.Median, d.Mean, d.P90, d.Max)
}

// writeDOT renders the AS relationship graph: solid arrows point from
// provider to customer, dashed edges are peerings.
func writeDOT(w *os.File, topo *topology.Topology) {
	fmt.Fprintln(w, "digraph internet {")
	fmt.Fprintln(w, "  rankdir=TB; node [shape=box, fontsize=9];")
	for _, as := range topo.ASes {
		fmt.Fprintf(w, "  as%d [label=\"%s\\nAS%d\"];\n", as.Index, as.Name, as.ASN)
	}
	for a := 0; a < topo.Graph.N(); a++ {
		for _, nb := range topo.Graph.Neighbors(a) {
			switch {
			case nb.Rel == topology.RelCustomer:
				fmt.Fprintf(w, "  as%d -> as%d;\n", a, nb.To)
			case nb.Rel == topology.RelPeer && a < nb.To:
				fmt.Fprintf(w, "  as%d -> as%d [dir=none, style=dashed];\n", a, nb.To)
			}
		}
	}
	fmt.Fprintln(w, "}")
}

// runDiscovery replaces the ground-truth hitlist with a discovered one.
func runDiscovery(topo *topology.Topology, d *dataset.Dataset) {
	var vp *topology.VP
	for _, v := range topo.VPs {
		if !v.SourceRateLimited {
			vp = v
			break
		}
	}
	p := probe.New(probe.NewSimTransport(vp.Host, topo.Net.Engine()), 0x7d01)
	var pfxs []netip.Prefix
	for _, h := range d.Hitlist {
		pfxs = append(pfxs, h.Prefix)
	}
	var entries []hitlist.Entry
	hitlist.Discover(p, pfxs, hitlist.Options{Rate: 2000}, func(es []hitlist.Entry) { entries = es })
	topo.Net.Engine().Run()
	responsive := 0
	for i, e := range entries {
		d.Hitlist[i].Addr = e.Addr
		if e.Responsive {
			responsive++
		}
	}
	fmt.Printf("hitlist discovery: %d of %d prefixes responsive (swept from %s)\n",
		responsive, len(entries), vp.Name)
}
