// Command rrarchive re-analyzes archived measurements without
// re-probing: given a raw-results file (rrstudy -dump) and the dataset
// files (topogen -out), it rebuilds Table 1 and the reachability
// headlines — the workflow the paper's released datasets support.
//
// Usage:
//
//	rrarchive -results raw.txt -datasets DIR
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"

	"recordroute/internal/analysis"
	"recordroute/internal/dataset"
	"recordroute/internal/probe"
	"recordroute/internal/results"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rrarchive: ")
	var (
		resultsPath = flag.String("results", "", "raw results file (rrstudy -dump)")
		datasetDir  = flag.String("datasets", "", "directory with prefixes.txt, hitlist.txt, astypes.txt (topogen -out)")
	)
	flag.Parse()
	if *resultsPath == "" || *datasetDir == "" {
		log.Fatal("need both -results and -datasets")
	}

	perVP, err := readResults(*resultsPath)
	if err != nil {
		log.Fatal(err)
	}
	d, err := readDatasets(*datasetDir)
	if err != nil {
		log.Fatal(err)
	}

	stats := analysis.AggregateRR(perVP)
	rrResp := make(map[netip.Addr]bool, len(stats))
	reachable, responsive := 0, 0
	for a, st := range stats {
		if st.RRResponsive() {
			rrResp[a] = true
			responsive++
			if st.RRReachable() {
				reachable++
			}
		}
	}

	// The archive holds ping-RR outcomes only; approximate
	// ping-responsiveness by "answered anything", the upper bound an
	// RR-only archive supports.
	pingResp := make(map[netip.Addr]bool)
	for _, rs := range perVP {
		for _, r := range rs {
			if r.Type == probe.EchoReply {
				pingResp[r.Dst] = true
			}
		}
	}

	table := analysis.BuildTable1(d.DestInfos(), pingResp, rrResp)
	fmt.Printf("re-analysis of %s (%d VPs)\n\n", *resultsPath, len(perVP))
	table.Render(os.Stdout)
	fmt.Printf("\nRR-reachable fraction of RR-responsive: %.2f (%d of %d)\n",
		frac(reachable, responsive), reachable, responsive)

	cover := analysis.CoverageFromStats(stats, 9)
	steps := analysis.GreedyCover(cover, 5)
	fmt.Println("greedy site selection from the archive:")
	for i, s := range steps {
		fmt.Printf("  %d sites: %-12s covered %d\n", i+1, s.VP, s.TotalCovered)
	}
}

func readResults(path string) (map[string][]probe.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return results.Read(f)
}

func readDatasets(dir string) (*dataset.Dataset, error) {
	open := func(name string) (*os.File, error) { return os.Open(filepath.Join(dir, name)) }
	pfx, err := open("prefixes.txt")
	if err != nil {
		return nil, err
	}
	defer pfx.Close()
	hit, err := open("hitlist.txt")
	if err != nil {
		return nil, err
	}
	defer hit.Close()
	ast, err := open("astypes.txt")
	if err != nil {
		return nil, err
	}
	defer ast.Close()
	return dataset.Read(pfx, hit, ast)
}

func frac(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
