// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark record on stdout, so CI can archive machine-readable
// timings (see the Makefile's bench target, which writes
// BENCH_parallel.json). Only the standard library is used.
//
// Each benchmark line becomes an object holding the iteration count,
// ns/op, the GOMAXPROCS the line ran under, the CPU count the host had
// (from the benchmark's own numcpu ReportMetric when present, else this
// process's runtime.NumCPU — per line, because concatenated runs may
// come from different hosts), and every extra metric the benchmark
// reported (B/op, allocs/op, and custom ReportMetric values such as
// reachable-frac or spinup-ms). Non-benchmark lines are ignored, so the
// tool can consume raw `go test` output directly — including several
// concatenated runs at different GOMAXPROCS:
//
//	go test -bench 'Figure1' -benchtime 1x . | go run ./cmd/benchjson
//
// With -metrics, a metrics snapshot previously written by
// `rrstudy -metrics` is embedded into the record, so benchmark timings
// and the campaign's counter deltas archive side by side.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"recordroute/internal/benchfmt"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	NumCPU     int                `json:"numcpu"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Record is the archived document.
type Record struct {
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"numcpu"`
	Results    []Result `json:"results"`
	// Metrics embeds a campaign metrics snapshot (the parsed contents
	// of an `rrstudy -metrics` file) when -metrics is given.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

func main() {
	metricsPath := flag.String("metrics", "", "embed this rrstudy -metrics JSON file into the record")
	flag.Parse()
	rec := Record{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if *metricsPath != "" {
		raw, err := os.ReadFile(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON\n", *metricsPath)
			os.Exit(1)
		}
		rec.Metrics = json.RawMessage(raw)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if r, ok := benchfmt.ParseLine(sc.Text()); ok {
			ncpu := runtime.NumCPU()
			if v, ok := r.Metrics["numcpu"]; ok && v > 0 {
				ncpu = int(v)
			}
			rec.Results = append(rec.Results, Result{
				Name:       r.Name,
				Procs:      r.Procs,
				NumCPU:     ncpu,
				Iterations: r.Iterations,
				NsPerOp:    r.NsPerOp,
				Metrics:    r.Metrics,
			})
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
