// Command rrprober issues individual Record Route measurements against
// a simulated Internet: ping, ping-RR, ping-RRudp, TTL-limited ping-RR,
// traceroute, and reverse-path measurements.
//
// Usage:
//
//	rrprober [-scale 0.3] [-seed N] -mode rr [-vp mlab-4] [-dst ADDR] [-ttl N] [-n 5]
//
// Modes: ping, rr, rrudp, ttlrr, ts, trace, reverse, list.
// Without -dst, the first -n responsive destinations are probed.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"time"

	"os"

	"recordroute"
	"recordroute/internal/netsim"
	"recordroute/internal/probe"
	"recordroute/internal/rawnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rrprober: ")
	var (
		scale = flag.Float64("scale", 0.3, "topology scale factor")
		seed  = flag.Uint64("seed", 0, "random seed")
		mode  = flag.String("mode", "rr", "probe mode: ping|rr|rrudp|ttlrr|ts|trace|reverse|list")
		vp    = flag.String("vp", "", "vantage point name (default: last M-Lab VP)")
		dst   = flag.String("dst", "", "destination address (default: sweep)")
		ttl   = flag.Uint("ttl", 10, "initial TTL for -mode ttlrr")
		n     = flag.Int("n", 5, "destinations to sweep when -dst is unset")
		raw   = flag.Bool("raw", false, "probe the real network via raw sockets (linux, CAP_NET_RAW) instead of the simulator")
		src   = flag.String("src", "", "local source address for -raw")
		pcap  = flag.String("pcap", "", "capture the vantage point's received packets to this pcap file (simulator modes)")
	)
	flag.Parse()

	if *raw {
		runRaw(*mode, *src, *dst, uint8(*ttl))
		return
	}

	inet, err := recordroute.New(recordroute.WithScale(*scale), recordroute.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	vpName := *vp
	if vpName == "" {
		ml := inet.MLabVPs()
		vpName = ml[len(ml)-1]
	}

	if *pcap != "" {
		stop, err := attachPcap(inet, vpName, *pcap)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}

	if *mode == "list" {
		fmt.Println("vantage points:")
		for _, name := range inet.VPNames() {
			kind, _ := inet.VPKind(name)
			fmt.Printf("  %-12s %s\n", name, kind)
		}
		for _, name := range inet.CloudNames() {
			fmt.Printf("  %-12s cloud\n", name)
		}
		fmt.Printf("%d destinations, e.g. %v\n", len(inet.Destinations()), inet.Destinations()[0])
		return
	}

	var targets []netip.Addr
	if *dst != "" {
		a, err := netip.ParseAddr(*dst)
		if err != nil {
			log.Fatalf("bad -dst: %v", err)
		}
		targets = []netip.Addr{a}
	} else {
		targets = inet.Destinations()
	}

	probed := 0
	for _, d := range targets {
		if probed >= *n && *dst == "" {
			break
		}
		responded, err := probeOne(inet, *mode, vpName, d, uint8(*ttl))
		if err != nil {
			log.Fatal(err)
		}
		if responded || *dst != "" {
			probed++
		}
	}
}

// probeOne issues one measurement, printing its outcome; it reports
// whether anything responded (for sweep counting).
func probeOne(inet *recordroute.Internet, mode, vp string, d netip.Addr, ttl uint8) (bool, error) {
	switch mode {
	case "ts":
		tsr, err := inet.PingTS(vp, d)
		if err != nil {
			return false, err
		}
		fmt.Printf("ping-ts %s → %v: %s rtt=%v overflow=%d\n", vp, d, tsr.Kind, tsr.RTT, tsr.Overflow)
		for i, e := range tsr.Entries {
			fmt.Printf("  slot %d: %-16v @ %dms\n", i+1, e.Addr, e.Millis)
		}
		return tsr.Responded, nil
	case "ping", "rr", "rrudp", "ttlrr":
		var reply recordroute.Reply
		var err error
		switch mode {
		case "ping":
			reply, err = inet.Ping(vp, d)
		case "rr":
			reply, err = inet.PingRR(vp, d)
		case "rrudp":
			reply, err = inet.PingRRUDP(vp, d)
		case "ttlrr":
			reply, err = inet.PingRRWithTTL(vp, d, ttl)
		}
		if err != nil {
			return false, err
		}
		fmt.Printf("%s %s → %v: %s rtt=%v\n", mode, vp, d, reply.Kind, reply.RTT)
		for i, hop := range reply.RecordedRoute {
			marker := ""
			if hop == d {
				marker = " ← destination"
			}
			fmt.Printf("  slot %d: %-16v AS%d%s\n", i+1, hop, inet.OriginASN(hop), marker)
		}
		return reply.Responded, nil
	case "trace":
		tr, err := inet.Traceroute(vp, d)
		if err != nil {
			return false, err
		}
		fmt.Printf("traceroute %s → %v (reached=%v):\n", vp, d, tr.Reached)
		for _, h := range tr.Hops {
			if h.Responded {
				fmt.Printf("  %2d  %-16v AS%-6d %v\n", h.TTL, h.Addr, inet.OriginASN(h.Addr), h.RTT)
			} else {
				fmt.Printf("  %2d  *\n", h.TTL)
			}
		}
		return tr.Reached, nil
	case "reverse":
		rp, err := inet.ReversePath(vp, d)
		if err != nil {
			fmt.Printf("reverse %v → %s: %v\n", d, vp, err)
			return false, nil
		}
		fmt.Printf("reverse path %v → %s (%d segments, complete=%v):\n",
			d, vp, rp.Segments, rp.Complete)
		for i, hop := range rp.Hops {
			fmt.Printf("  %2d  %-16v AS%d\n", i+1, hop, inet.OriginASN(hop))
		}
		return len(rp.Hops) > 0, nil
	default:
		return false, fmt.Errorf("unknown mode %q", mode)
	}
}

// runRaw sends one probe on the real network through the rawnet
// transport. Only single-probe modes are supported.
func runRaw(mode, src, dst string, ttl uint8) {
	if src == "" || dst == "" {
		log.Fatal("-raw needs both -src (a local address) and -dst")
	}
	srcAddr, err := netip.ParseAddr(src)
	if err != nil {
		log.Fatalf("bad -src: %v", err)
	}
	dstAddr, err := netip.ParseAddr(dst)
	if err != nil {
		log.Fatalf("bad -dst: %v", err)
	}
	var kind probe.Kind
	switch mode {
	case "ping":
		kind = probe.Ping
	case "rr":
		kind = probe.PingRR
	case "rrudp":
		kind = probe.PingRRUDP
	case "ttlrr":
		kind = probe.TTLPingRR
	case "ts":
		kind = probe.PingTS
	default:
		log.Fatalf("mode %q not supported with -raw", mode)
	}
	tr, err := rawnet.New(srcAddr)
	if err != nil {
		log.Fatalf("raw transport: %v (need linux + CAP_NET_RAW)", err)
	}
	defer tr.Close()
	done := make(chan probe.Result, 1)
	tr.Do(func() {
		p := probe.New(tr, 0x5252)
		p.StartOne(probe.Spec{Dst: dstAddr, Kind: kind, TTL: ttl}, 3*time.Second, func(r probe.Result) {
			done <- r
		})
	})
	select {
	case r := <-done:
		fmt.Printf("%s %v → %s rtt=%v\n", mode, dstAddr, r.Type, r.RTT())
		for i, hop := range r.RR {
			fmt.Printf("  slot %d: %v\n", i+1, hop)
		}
		for i, e := range r.TS {
			fmt.Printf("  ts %d: %v @ %dms\n", i+1, e.Addr, e.Millis)
		}
		if err := tr.Err(); err != nil {
			log.Printf("transport: %v", err)
		}
	case <-time.After(5 * time.Second):
		log.Fatal("probe never resolved")
	}
}

// attachPcap wires a pcap capture to the named VP's host.
func attachPcap(inet *recordroute.Internet, vpName, path string) (stop func(), err error) {
	host, err := inet.HostOf(vpName)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := netsim.NewPcapWriter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	detach := netsim.CaptureHost(host, w)
	return func() {
		detach()
		if err := w.Err(); err != nil {
			log.Printf("pcap: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Printf("pcap: %v", err)
		}
		fmt.Fprintf(os.Stderr, "captured %d packets to %s\n", w.Packets(), path)
	}, nil
}
