// Command rrstudy reproduces the paper's measurement study end to end
// against a simulated Internet and prints every table and figure.
//
// Usage:
//
//	rrstudy [-scale 1.0] [-seed N] [-rate PPS] [-experiment all]
//
// Experiments: all, table1, fig1, fig2, audit, fig3, fig4, fig5, vpdist,
// atlas, lsrr, chaos.
// At -scale 1.0 (the default, ≈1/100 of the paper's probing volume) the
// full run takes on the order of a minute.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"recordroute"
	"recordroute/internal/results"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rrstudy: ")
	var (
		scale      = flag.Float64("scale", 1.0, "topology scale factor (1.0 ≈ 1/100 of the paper)")
		seed       = flag.Uint64("seed", 0, "random seed (0 = built-in default)")
		rate       = flag.Float64("rate", 20, "per-VP probing rate in packets per second")
		experiment = flag.String("experiment", "all", "experiment to run: all|table1|fig1|fig2|audit|fig3|fig4|fig5|vpdist|atlas|lsrr|chaos")
		jsonOut    = flag.String("json", "", "also write the combined machine-readable report to this file (all experiments only)")
		dump       = flag.String("dump", "", "archive the raw per-VP ping-RR results to this file")
		outdir     = flag.String("outdir", "", "also write each experiment's rendering to its own file in this directory (all experiments only)")

		chaosLoss    = flag.Float64("chaos-loss", 0, "chaos: custom scenario per-direction loss probability on a quarter of links (0 = default sweep)")
		chaosOutages = flag.Float64("chaos-outages", 0, "chaos: custom scenario fraction of routers suffering a transient outage")
		chaosRetries = flag.Int("chaos-retries", 2, "chaos: recovery-arm retransmission budget")
	)
	flag.Parse()

	start := time.Now()
	inet, err := recordroute.New(
		recordroute.WithScale(*scale),
		recordroute.WithSeed(*seed),
		recordroute.WithProbeRate(*rate),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# simulated Internet: %d ASes, %d destinations, %d VPs, %d clouds (built in %v)\n\n",
		inet.NumASes(), len(inet.Destinations()), len(inet.VPNames()), len(inet.CloudNames()),
		time.Since(start).Round(time.Millisecond))

	w := os.Stdout
	switch *experiment {
	case "all":
		var rep recordroute.Report
		var err error
		if *outdir != "" {
			rep, err = runAllToDir(inet, w, *outdir)
		} else {
			rep, err = inet.RunAll(w)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut != "" {
			err := writeFileAtomic(*jsonOut, func(f io.Writer) error {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				return enc.Encode(rep)
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "# report written to %s\n", *jsonOut)
		}
	case "table1":
		inet.Table1(w)
	case "fig1":
		inet.Figure1Reachability(w)
	case "fig2":
		if _, err := inet.Figure2Epochs(w); err != nil {
			log.Fatal(err)
		}
	case "audit":
		inet.StampAudit(w, 0)
	case "fig3":
		inet.Figure3Clouds(w, 0)
	case "fig4":
		inet.Figure4RateLimit(w, 1000)
	case "fig5":
		inet.Figure5TTL(w, 0)
	case "atlas":
		inet.TopologyAtlas(w, 0)
	case "lsrr":
		inet.SourceRouteCheck(w, 0)
	case "chaos":
		var scenarios []recordroute.ChaosScenario
		if *chaosLoss > 0 || *chaosOutages > 0 {
			scenarios = append(scenarios, recordroute.ChaosScenario{
				Label: "custom",
				Faults: recordroute.FaultProfile{
					LossProb: *chaosLoss, LossFrac: 0.25,
					OutageFrac: *chaosOutages,
				},
			})
		}
		if _, err := inet.ChaosReport(w, *chaosRetries, scenarios...); err != nil {
			log.Fatal(err)
		}
	case "vpdist":
		d := inet.VPResponseDistribution()
		fmt.Printf("RR-responsive destinations answering >2/3 of VPs: %.2f (paper: ~0.80)\n", d.AboveTwoThirds)
	default:
		log.Fatalf("unknown experiment %q", *experiment)
	}
	if *dump != "" {
		err := writeFileAtomic(*dump, func(f io.Writer) error {
			return results.Write(f, inet.RawPingRRResults())
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# raw results archived to %s\n", *dump)
	}
	fmt.Fprintf(os.Stderr, "\n# total wall time %v\n", time.Since(start).Round(time.Millisecond))
}

// writeFileAtomic writes through a temp file in the destination
// directory and renames it into place, so an interrupted run never
// leaves a truncated file under the final name and a concurrent reader
// sees either the old complete file or the new one.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name()) // no-op after a successful rename
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

// runAllToDir mirrors RunAll but tees each experiment into its own
// file, each written atomically.
func runAllToDir(inet *recordroute.Internet, w *os.File, dir string) (recordroute.Report, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return recordroute.Report{}, err
	}
	var rep recordroute.Report
	run := func(name string, fn func(out io.Writer) error) error {
		path := filepath.Join(dir, name+".txt")
		if err := writeFileAtomic(path, fn); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", path)
		return nil
	}
	steps := []struct {
		name string
		fn   func(out io.Writer) error
	}{
		{"table1", func(out io.Writer) error { rep.Table1 = inet.Table1(out); return nil }},
		{"figure1", func(out io.Writer) error { rep.Reachability = inet.Figure1Reachability(out); return nil }},
		{"figure2", func(out io.Writer) error {
			var err error
			rep.Epochs, err = inet.Figure2Epochs(out)
			return err
		}},
		{"audit", func(out io.Writer) error { rep.StampAudit = inet.StampAudit(out, 0); return nil }},
		{"figure3", func(out io.Writer) error { rep.Clouds = inet.Figure3Clouds(out, 0); return nil }},
		{"figure4", func(out io.Writer) error { rep.RateLimit = inet.Figure4RateLimit(out, 1000); return nil }},
		{"figure5", func(out io.Writer) error { rep.TTL = inet.Figure5TTL(out, 0); return nil }},
		{"atlas", func(out io.Writer) error { rep.Atlas = inet.TopologyAtlas(out, 0); return nil }},
		{"lsrr", func(out io.Writer) error { rep.SourceRoute = inet.SourceRouteCheck(out, 0); return nil }},
	}
	for _, st := range steps {
		if err := run(st.name, st.fn); err != nil {
			return rep, err
		}
	}
	rep.VPResponse = inet.VPResponseDistribution()
	fmt.Fprintln(w, "# per-experiment outputs written; see -outdir")
	return rep, nil
}
