// Command rrstudy reproduces the paper's measurement study end to end
// against a simulated Internet and prints every table and figure.
//
// Usage:
//
//	rrstudy [-scale 1.0|small|medium|large] [-seed N] [-rate PPS]
//	        [-experiment all] [-shards K] [-metrics out.json]
//	        [-trace dst=IP] [-progress]
//
// Experiments: all, table1, fig1, fig2, audit, fig3, fig4, fig5, vpdist,
// atlas, lsrr, traceroute, rr-vs-tr, chaos.
//
// -experiment traceroute runs the Doubletree engine (per-VP local stop
// sets plus a shared global (iface, dst-prefix) stop set, merged
// deterministically between rounds) against a naive exhaustive
// traceroute arm over the same pairs and reports the probe-budget
// saving; -experiment rr-vs-tr scores router- and AS-level agreement
// between ping-RR stamps and traceroute paths.
// At -scale 1.0 (the default, ≈1/100 of the paper's probing volume) the
// full run takes on the order of a minute. -scale also accepts a profile
// name: small (quick iteration), medium (= 1.0), or large (10⁵+
// advertised prefixes, approaching the paper's hitlist; a Table 1
// campaign takes minutes).
//
// Observability: -metrics captures every engine's counters into a
// per-shard snapshot with deterministic merged totals; -trace dst=<ip>
// (or vp=<name>) records the matching probe lifecycles and router
// events as JSON lines in -trace-out. Neither changes what a run
// measures.
//
// Profiling: -cpuprofile/-memprofile/-mutexprofile/-blockprofile write
// runtime/pprof captures of the run, for diagnosing campaign
// performance (shard scaling in particular) on real workloads rather
// than benchmarks. Mutex and block profiling are only switched on when
// their flags are set — both add sampling overhead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"recordroute"
	"recordroute/internal/results"
)

// parseTraceSpec parses "dst=<ip or prefix>" or "vp=<name>" into a
// trace filter. A bare address means its /32.
func parseTraceSpec(spec string) (recordroute.TraceFilter, error) {
	key, val, ok := strings.Cut(spec, "=")
	if !ok {
		return recordroute.TraceFilter{}, fmt.Errorf("bad -trace %q: want dst=<ip> or vp=<name>", spec)
	}
	switch key {
	case "dst":
		if p, err := netip.ParsePrefix(val); err == nil {
			return recordroute.TraceFilter{DstPrefix: p}, nil
		}
		a, err := netip.ParseAddr(val)
		if err != nil {
			return recordroute.TraceFilter{}, fmt.Errorf("bad -trace destination %q: %v", val, err)
		}
		return recordroute.TraceFilter{DstPrefix: netip.PrefixFrom(a, a.BitLen())}, nil
	case "vp":
		return recordroute.TraceFilter{VP: val}, nil
	default:
		return recordroute.TraceFilter{}, fmt.Errorf("bad -trace key %q: want dst or vp", key)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rrstudy: ")
	var (
		scale      = flag.String("scale", "1.0", "topology size: a numeric factor (1.0 ≈ 1/100 of the paper) or a profile name small|medium|large (large ≈ the paper's 10⁵-prefix hitlist)")
		seed       = flag.Uint64("seed", 0, "random seed (0 = built-in default)")
		rate       = flag.Float64("rate", 20, "per-VP probing rate in packets per second")
		experiment = flag.String("experiment", "all", "experiment to run: all|table1|fig1|fig2|audit|fig3|fig4|fig5|vpdist|atlas|lsrr|traceroute|rr-vs-tr|chaos|epochs-live")
		liveEpochs = flag.Int("live-epochs", 3, "epochs-live: number of consecutive fault epochs to measure")
		jsonOut    = flag.String("json", "", "also write the combined machine-readable report to this file (all experiments only)")
		dump       = flag.String("dump", "", "archive the raw per-VP ping-RR results to this file")
		outdir     = flag.String("outdir", "", "also write each experiment's rendering to its own file in this directory (all experiments only)")

		chaosLoss    = flag.Float64("chaos-loss", 0, "chaos: custom scenario per-direction loss probability on a quarter of links (0 = default sweep)")
		chaosOutages = flag.Float64("chaos-outages", 0, "chaos: custom scenario fraction of routers suffering a transient outage")
		chaosRetries = flag.Int("chaos-retries", 2, "chaos: recovery-arm retransmission budget")

		shards     = flag.Int("shards", 0, "campaign shard count for sharding-invariant experiments (0 = GOMAXPROCS, 1 = single shared engine)")
		journal    = flag.String("journal", "", "checkpoint the campaign to this JSONL journal: completed per-VP batches stream to it as they finish")
		resume     = flag.Bool("resume", false, "with -journal: skip the batches the journal already holds and continue a killed run")
		metricsOut = flag.String("metrics", "", "write a metrics snapshot (per-shard counters + deterministic merge) to this JSON file")
		traceSpec  = flag.String("trace", "", "attach an event trace: dst=<ip or prefix> follows probes to matching destinations, vp=<name> follows one VP's probe lifecycle")
		traceOut   = flag.String("trace-out", "trace.jsonl", "file the -trace events are written to, as JSON lines")
		perNode    = flag.Bool("metrics-per-node", false, "break the -metrics snapshot down by emitting router/host")
		progress   = flag.Bool("progress", false, "print a live per-experiment progress line to stderr")

		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile taken at exit to this file")
		blockProfile = flag.String("blockprofile", "", "write a goroutine-blocking profile taken at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
	}
	// Deferred: a run killed by log.Fatal writes no profiles, which is
	// fine — partial captures of a failed run mislead more than they help.
	defer writeExitProfiles(*memProfile, *mutexProfile, *blockProfile)

	start := time.Now()
	sizing := recordroute.WithScaleProfile(*scale)
	if f, err := strconv.ParseFloat(*scale, 64); err == nil {
		sizing = recordroute.WithScale(f)
	}
	inet, err := recordroute.New(
		sizing,
		recordroute.WithSeed(*seed),
		recordroute.WithProbeRate(*rate),
		recordroute.WithShards(*shards),
	)
	if err != nil {
		log.Fatal(err)
	}
	if *journal != "" {
		if err := inet.AttachJournal(*journal, *resume); err != nil {
			log.Fatal(err)
		}
		defer inet.CloseJournal()
	}
	var trace *recordroute.TraceHandle
	if *traceSpec != "" {
		filter, err := parseTraceSpec(*traceSpec)
		if err != nil {
			log.Fatal(err)
		}
		trace = inet.AttachTrace(filter, 0)
	}
	if *perNode {
		inet.EnablePerNodeMetrics()
	}
	// step wraps one experiment for the opt-in live progress line:
	// "running <name>... done (1.2s)" on stderr, keeping stdout clean
	// for the rendered tables.
	step := func(name string, fn func() error) {
		var t0 time.Time
		if *progress {
			t0 = time.Now()
			fmt.Fprintf(os.Stderr, "# running %-8s ...", name)
		}
		if err := fn(); err != nil {
			if *progress {
				fmt.Fprintln(os.Stderr, " failed")
			}
			log.Fatal(err)
		}
		if *progress {
			fmt.Fprintf(os.Stderr, " done (%v)\n", time.Since(t0).Round(time.Millisecond))
		}
	}
	fmt.Printf("# simulated Internet: %d ASes, %d destinations, %d VPs, %d clouds (built in %v)\n\n",
		inet.NumASes(), len(inet.Destinations()), len(inet.VPNames()), len(inet.CloudNames()),
		time.Since(start).Round(time.Millisecond))

	w := os.Stdout
	var chaosSum *recordroute.ChaosSummary
	switch *experiment {
	case "all":
		step("all", func() error {
			var rep recordroute.Report
			var err error
			if *outdir != "" {
				rep, err = runAllToDir(inet, w, *outdir)
			} else {
				rep, err = inet.RunAll(w)
			}
			if err != nil {
				return err
			}
			if *jsonOut != "" {
				err := writeFileAtomic(*jsonOut, func(f io.Writer) error {
					enc := json.NewEncoder(f)
					enc.SetIndent("", "  ")
					return enc.Encode(rep)
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "# report written to %s\n", *jsonOut)
			}
			return nil
		})
	case "table1":
		step("table1", func() error { inet.Table1(w); return nil })
	case "fig1":
		step("fig1", func() error { inet.Figure1Reachability(w); return nil })
	case "fig2":
		step("fig2", func() error { _, err := inet.Figure2Epochs(w); return err })
	case "audit":
		step("audit", func() error { inet.StampAudit(w, 0); return nil })
	case "fig3":
		step("fig3", func() error { inet.Figure3Clouds(w, 0); return nil })
	case "fig4":
		step("fig4", func() error { inet.Figure4RateLimit(w, 1000); return nil })
	case "fig5":
		step("fig5", func() error { inet.Figure5TTL(w, 0); return nil })
	case "atlas":
		step("atlas", func() error { inet.TopologyAtlas(w, 0); return nil })
	case "lsrr":
		step("lsrr", func() error { inet.SourceRouteCheck(w, 0); return nil })
	case "traceroute":
		step("traceroute", func() error { inet.Doubletree(w, 0, 0); return nil })
	case "rr-vs-tr":
		step("rr-vs-tr", func() error { inet.RRvsTraceroute(w, 0); return nil })
	case "chaos":
		var scenarios []recordroute.ChaosScenario
		if *chaosLoss > 0 || *chaosOutages > 0 {
			scenarios = append(scenarios, recordroute.ChaosScenario{
				Label: "custom",
				Faults: recordroute.FaultProfile{
					LossProb: *chaosLoss, LossFrac: 0.25,
					OutageFrac: *chaosOutages,
				},
			})
		}
		step("chaos", func() error {
			s, err := inet.ChaosReport(w, *chaosRetries, scenarios...)
			chaosSum = &s
			return err
		})
	case "epochs-live":
		step("epochs-live", func() error { _, err := inet.EpochsLive(w, *liveEpochs); return err })
	case "vpdist":
		step("vpdist", func() error {
			d := inet.VPResponseDistribution()
			fmt.Printf("RR-responsive destinations answering >2/3 of VPs: %.2f (paper: ~0.80)\n", d.AboveTwoThirds)
			return nil
		})
	default:
		log.Fatalf("unknown experiment %q", *experiment)
	}
	if *metricsOut != "" {
		err := writeFileAtomic(*metricsOut, func(f io.Writer) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			// The chaos sweep measures freshly built per-arm Internets,
			// so its snapshots (captured inside each arm) are the
			// meaningful ones; every other experiment probes through
			// this Internet's own engines.
			if chaosSum != nil {
				return enc.Encode(chaosSum.Snapshots)
			}
			return enc.Encode(inet.Metrics("campaign"))
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# metrics snapshot written to %s\n", *metricsOut)
	}
	if trace != nil {
		err := writeFileAtomic(*traceOut, func(f io.Writer) error {
			return trace.WriteJSONL(f)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# %d trace events written to %s (%d evicted)\n",
			trace.Len(), *traceOut, trace.Dropped())
	}
	if *dump != "" {
		err := writeFileAtomic(*dump, func(f io.Writer) error {
			return results.Write(f, inet.RawPingRRResults())
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# raw results archived to %s\n", *dump)
	}
	fmt.Fprintf(os.Stderr, "\n# total wall time %v\n", time.Since(start).Round(time.Millisecond))
}

// writeExitProfiles flushes the end-of-run pprof captures that only
// make sense once the campaign has finished: allocation totals, mutex
// contention, and goroutine blocking. Empty paths are skipped.
func writeExitProfiles(mem, mutex, block string) {
	write := func(path, profile string, gcFirst bool) {
		if path == "" {
			return
		}
		if gcFirst {
			runtime.GC() // settle heap stats so the profile reflects the run
		}
		f, err := os.Create(path)
		if err != nil {
			log.Print(err)
			return
		}
		defer f.Close()
		if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
			log.Print(err)
			return
		}
		fmt.Fprintf(os.Stderr, "# %s profile written to %s\n", profile, path)
	}
	write(mem, "allocs", true)
	write(mutex, "mutex", false)
	write(block, "block", false)
}

// writeFileAtomic writes through a temp file in the destination
// directory and renames it into place, so an interrupted run never
// leaves a truncated file under the final name and a concurrent reader
// sees either the old complete file or the new one.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name()) // no-op after a successful rename
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

// runAllToDir mirrors RunAll but tees each experiment into its own
// file, each written atomically.
func runAllToDir(inet *recordroute.Internet, w *os.File, dir string) (recordroute.Report, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return recordroute.Report{}, err
	}
	var rep recordroute.Report
	run := func(name string, fn func(out io.Writer) error) error {
		path := filepath.Join(dir, name+".txt")
		if err := writeFileAtomic(path, fn); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", path)
		return nil
	}
	steps := []struct {
		name string
		fn   func(out io.Writer) error
	}{
		{"table1", func(out io.Writer) error { rep.Table1 = inet.Table1(out); return nil }},
		{"figure1", func(out io.Writer) error { rep.Reachability = inet.Figure1Reachability(out); return nil }},
		{"figure2", func(out io.Writer) error {
			var err error
			rep.Epochs, err = inet.Figure2Epochs(out)
			return err
		}},
		{"audit", func(out io.Writer) error { rep.StampAudit = inet.StampAudit(out, 0); return nil }},
		{"figure3", func(out io.Writer) error { rep.Clouds = inet.Figure3Clouds(out, 0); return nil }},
		{"figure4", func(out io.Writer) error { rep.RateLimit = inet.Figure4RateLimit(out, 1000); return nil }},
		{"figure5", func(out io.Writer) error { rep.TTL = inet.Figure5TTL(out, 0); return nil }},
		{"atlas", func(out io.Writer) error { rep.Atlas = inet.TopologyAtlas(out, 0); return nil }},
		{"lsrr", func(out io.Writer) error { rep.SourceRoute = inet.SourceRouteCheck(out, 0); return nil }},
	}
	for _, st := range steps {
		if err := run(st.name, st.fn); err != nil {
			return rep, err
		}
	}
	rep.VPResponse = inet.VPResponseDistribution()
	fmt.Fprintln(w, "# per-experiment outputs written; see -outdir")
	return rep, nil
}
