package recordroute

// Shard scaling-efficiency smoke test. The CI gate proper lives in
// cmd/benchguard (-min-speedup, driven by `make bench-scaling`); this
// test is the in-tree version developers hit with plain `go test` on
// multi-core machines, so a change that wrecks parallel scaling fails
// before it ever reaches the benchmark harness.

import (
	"io"
	"runtime"
	"testing"
	"time"
)

// figure1Duration times one Figure 1 reachability run at k shards.
func figure1Duration(t *testing.T, k int) time.Duration {
	t.Helper()
	in, err := New(WithScale(benchScale), WithProbeRate(200), WithShards(k))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	in.Figure1Reachability(io.Discard)
	return time.Since(start)
}

// TestShardScalingEfficiency asserts that four shards on four-plus real
// cores beat one shard by at least 2x on the Figure 1 workload — half
// the ideal 4x, leaving headroom for runner noise and the serial phases
// (origin pings, alias collection) while still catching a return of the
// historical negative scaling. Skipped wherever the speedup is not
// physically measurable: short mode, under the race detector (its
// serialization overwhelms the parallelism being measured), and hosts
// without four usable CPUs.
func TestShardScalingEfficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test in -short mode")
	}
	if raceEnabled {
		t.Skip("timing test under -race")
	}
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("host undersized for a scaling measurement: numcpu=%d gomaxprocs=%d",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	// Best of two per shard count: the first run also warms the build
	// caches, and one GC pause on either side can swing a single sample.
	best := func(k int) time.Duration {
		d := figure1Duration(t, k)
		if d2 := figure1Duration(t, k); d2 < d {
			d = d2
		}
		return d
	}
	seq := best(1)
	par := best(4)
	speedup := float64(seq) / float64(par)
	t.Logf("shards=1 %v, shards=4 %v: %.2fx speedup", seq, par, speedup)
	if speedup < 2.0 {
		t.Errorf("shards=4 speedup %.2fx below the 2x floor (shards=1 %v, shards=4 %v)", speedup, seq, par)
	}
}
