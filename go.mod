module recordroute

go 1.22
